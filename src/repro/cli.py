"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``      — list workloads (optionally one category)
``run``       — simulate one workload under one predictor
``compare``   — baseline vs a set of predictors on one workload
``profile``   — per-bucket CPI breakdown (stall attribution) and the
                delta against a second predictor; optional event-trace
                export (``--trace-json``/``--trace-csv``)
``figure``    — regenerate one of the paper's figures (``6`` or ``fig06``)
``sweep``     — predictors × cores over the workload suite
``storage``   — print Table I
``report``    — write a full reproduction report
``cache``     — inspect, clear, or prune the persistent result cache
``bench``     — simulator performance benchmark: sim-KIPS over a fixed
                (workload × predictor) matrix, fast-vs-slow-path
                speedup, baseline comparison and the CI regression
                gate (``--check``); writes ``BENCH_<date>.json``

Every simulating command runs through the campaign engine
(:mod:`repro.experiments.campaign`): ``--jobs N`` fans simulations out
over N worker processes (default: all cores), and results persist
under ``.repro-cache/`` so an identical rerun never simulates
(``--no-cache`` opts out; ``repro cache stats`` shows the counters).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.campaign import JobEvent, ResultCache
from repro.experiments.runner import (
    DEFAULT_LENGTH,
    Runner,
    default_warmup,
)
from repro.predictors import make_predictor
from repro.telemetry.trace import DEFAULT_CAPACITY
from repro.trace.workloads import CATALOGUE, CATEGORIES, get_profile


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--length", type=int, default=DEFAULT_LENGTH,
                        help="trace length in micro-ops")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warmup prefix excluded from statistics "
                             "(default: 40%% of length, capped at 40k)")
    parser.add_argument("--core", choices=("skylake", "skylake-2x"),
                        default="skylake")
    _add_campaign_args(parser)


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the campaign engine "
                             "(default: all cores; 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the persistent "
                             "result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")


def _warmup(args) -> int:
    if args.warmup is not None:
        return args.warmup
    return default_warmup(args.length)


def _progress(event: JobEvent) -> None:
    """Per-job progress line on stderr — campaigns stay observable."""
    if event.status == "start":
        return
    timing = "cache hit" if event.status == "hit" \
        else f"{event.elapsed:.2f}s"
    print(f"  [{event.index}/{event.total}] {event.job.label}: {timing}",
          file=sys.stderr)


def _runner(args, workloads: Optional[List[str]] = None) -> Runner:
    return Runner(length=args.length, warmup=_warmup(args),
                  workloads=workloads, jobs=args.jobs,
                  use_cache=not args.no_cache, cache_dir=args.cache_dir,
                  progress=_progress)


def _figure_number(text: str) -> int:
    """Accept both ``6`` and the figure label forms ``fig6``/``fig06``."""
    raw = text.lower()
    if raw.startswith("fig"):
        raw = raw[3:]
    try:
        return int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a figure number (use 6..13 or fig06..fig13)"
        ) from None


def cmd_list(args) -> int:
    """List the workload catalogue, grouped by category."""
    for category in CATEGORIES:
        if args.category and category != args.category:
            continue
        names = [name for name, profile in CATALOGUE.items()
                 if profile.category == category]
        print(f"{category} ({len(names)}):")
        print("  " + ", ".join(names))
    return 0


def cmd_run(args) -> int:
    """Simulate one (workload, core, predictor) job."""
    runner = _runner(args, workloads=[args.workload])
    run = runner.workload_run(args.workload, args.core, args.predictor)
    result = run.result
    print(result.summary())
    print(f"speedup over baseline: {run.gain:+.2%}")
    return 0


def cmd_compare(args) -> int:
    """Rank predictors against the baseline on one workload."""
    runner = _runner(args, workloads=[args.workload])
    baseline = runner.baseline(args.workload, args.core)
    print(f"{args.workload} on {args.core}: baseline IPC "
          f"{baseline.ipc:.3f}")
    print(f"{'predictor':<16} {'speedup':>9} {'coverage':>9} "
          f"{'accuracy':>9}")
    for name in args.predictors:
        result = runner.run(args.workload, args.core, name)
        print(f"{name:<16} {result.ipc / baseline.ipc - 1:+9.2%} "
              f"{result.coverage:9.1%} {result.accuracy:9.2%}")
    return 0


def _parse_age(text: str) -> float:
    """Duration in seconds from ``3600``, ``30m``, ``12h``, ``7d``,
    ``2w`` forms."""
    units = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 7 * 86400}
    raw = text.strip().lower()
    scale = 1.0
    if raw and raw[-1] in units:
        scale = units[raw[-1]]
        raw = raw[:-1]
    try:
        seconds = float(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not an age (use e.g. 3600, 30m, 12h, 7d)"
        ) from None
    if seconds < 0:
        raise argparse.ArgumentTypeError("age must be >= 0")
    return seconds


def cmd_profile(args) -> int:
    """Stall-attribution CPI breakdown, predictor vs baseline."""
    from repro.analysis.reporting import format_cpi_breakdown

    runner = _runner(args, workloads=[args.workload])
    against_spec = None if args.against == "baseline" else args.against
    result = runner.run(args.workload, args.core, args.predictor)
    against = runner.run(args.workload, args.core, against_spec)
    print(format_cpi_breakdown(result, against))
    print(f"IPC {result.ipc:.3f} vs {against.predictor} "
          f"{against.ipc:.3f} ({result.ipc / against.ipc - 1:+.2%})")
    if args.trace_json or args.trace_csv:
        _export_event_trace(args, runner)
    return 0


def _export_event_trace(args, runner) -> None:
    """Rerun the profiled configuration in-process with the bounded
    event ring enabled and write the requested export(s)."""
    from repro.experiments.campaign import build_predictor
    from repro.experiments.runner import core_config
    from repro.pipeline.engine import Engine
    from repro.telemetry.export import write_chrome_trace, write_csv_trace

    trace = runner.trace(args.workload)
    config = core_config(args.core)
    predictor = build_predictor(args.predictor, trace, config)
    engine = Engine(config, predictor, collect_events=True,
                    event_capacity=args.trace_events)
    result = engine.run(trace, workload=args.workload,
                        warmup=_warmup(args))
    label = f"{args.workload}/{args.core}/{args.predictor}"
    if args.trace_json:
        write_chrome_trace(args.trace_json, result.events, label)
        print(f"wrote {args.trace_json} ({len(result.events)} events, "
              f"{result.events.dropped} dropped)")
    if args.trace_csv:
        write_csv_trace(args.trace_csv, result.events)
        print(f"wrote {args.trace_csv}")


def cmd_figure(args) -> int:
    """Regenerate one paper figure via its experiment driver."""
    from repro.experiments import figures

    driver = getattr(figures, f"figure{args.number}", None)
    renderer = getattr(figures, f"render_figure{args.number}", None)
    if driver is None or renderer is None:
        print(f"no driver for figure {args.number}", file=sys.stderr)
        return 2
    runner = figures.default_runner(length=args.length,
                                    warmup=_warmup(args),
                                    per_category=args.per_category,
                                    jobs=args.jobs,
                                    use_cache=not args.no_cache,
                                    cache_dir=args.cache_dir,
                                    progress=_progress)
    print(renderer(driver(runner)))
    return 0


def cmd_sweep(args) -> int:
    """Full design-space sweep: every predictor × every core over the
    workload suite, as one deduplicated campaign."""
    from repro.analysis.reporting import format_suite, format_table

    runner = _default_runner_for(args)
    rows = []
    for core in args.cores:
        for predictor in args.predictors:
            suite = runner.suite(predictor, core=core)
            rows.append((core, predictor, f"{suite.gain:+.2%}",
                         f"{suite.coverage:.1%}", len(suite)))
            if args.per_workload:
                print(format_suite(f"{predictor} on {core}", suite))
                print()
    print(format_table(
        ("core", "predictor", "geomean gain", "coverage", "workloads"),
        rows))
    return 0


def _default_runner_for(args) -> Runner:
    from repro.experiments.figures import default_runner

    return default_runner(length=args.length, warmup=_warmup(args),
                          per_category=args.per_category,
                          jobs=args.jobs, use_cache=not args.no_cache,
                          cache_dir=args.cache_dir, progress=_progress)


def cmd_storage(_args) -> int:
    """Print the paper's Table I storage breakdown."""
    from repro.experiments import storage

    print(storage.format_table1())
    return 0


def cmd_report(args) -> int:
    """Write the full paper-vs-measured markdown report."""
    from repro.experiments.report import write_report

    runner = _default_runner_for(args)
    write_report(args.output, runner, figure_numbers=args.figures,
                 include_oracle=args.oracle)
    print(f"wrote {args.output}")
    return 0


def cmd_cache(args) -> int:
    """Inspect or clear the campaign result cache."""
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    if args.action == "prune":
        if args.older_than is None:
            print("cache prune requires --older-than (e.g. 7d, 12h)",
                  file=sys.stderr)
            return 2
        removed = cache.prune(args.older_than)
        print(f"pruned {removed} cached result(s) older than "
              f"{args.older_than:.0f}s from {cache.root}")
        return 0
    stats = cache.load_stats()
    entries = cache.entries()
    last = stats["last_run"]
    print(f"cache directory: {cache.root}")
    print(f"entries: {len(entries)} ({cache.size_bytes() / 1024:.1f} KiB)")
    print(f"cumulative: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['simulated']} simulations executed")
    print(f"last run: {last['hits']} hits, {last['misses']} misses, "
          f"{last['simulated']} simulations executed")
    return 0


def cmd_bench(args) -> int:
    """Simulator throughput benchmark + regression gate (docs/PERF.md)."""
    from repro.experiments import perfbench

    report = perfbench.run_bench(
        workloads=args.workloads, predictors=args.predictors,
        length=args.length, warmup=args.warmup, repeats=args.repeats,
        core=args.core, measure_slow=not args.no_slow,
        progress=lambda line: print(f"  {line}", file=sys.stderr))

    comparison = None
    baseline = perfbench.load_baseline(args.baseline)
    if baseline is not None:
        comparison = perfbench.compare_to_baseline(report, baseline)
        report["baseline_comparison"] = comparison
    print(perfbench.format_report(report, comparison))

    if not args.no_output:
        path = perfbench.write_report(report, args.output)
        print(f"wrote {path}")
    if args.update_baseline:
        perfbench.write_report(report, args.baseline)
        print(f"updated baseline {args.baseline}")
        return 0
    if args.check:
        if comparison is None:
            print(f"no baseline at {args.baseline} to check against",
                  file=sys.stderr)
            return 2
        failures = perfbench.check_regression(comparison, args.tolerance)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"check passed (tolerance {args.tolerance:.0%})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The `python -m repro` argument parser (one sub-command per verb)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Focused Value Prediction (ISCA 2020) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list workloads")
    p_list.add_argument("--category", choices=CATEGORIES)
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload")
    p_run.add_argument("--predictor", default="fvp")
    _add_scale_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare predictors")
    p_cmp.add_argument("workload")
    p_cmp.add_argument("predictors", nargs="+")
    _add_scale_args(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_prof = sub.add_parser(
        "profile",
        help="per-bucket CPI breakdown and delta vs another predictor")
    p_prof.add_argument("workload")
    p_prof.add_argument("--predictor", default="fvp")
    p_prof.add_argument("--against", default="baseline", metavar="PRED",
                        help="predictor to diff against "
                             "(default: baseline)")
    p_prof.add_argument("--trace-json", default=None, metavar="FILE",
                        help="write a Chrome-trace JSON event trace")
    p_prof.add_argument("--trace-csv", default=None, metavar="FILE",
                        help="write a CSV event trace")
    p_prof.add_argument("--trace-events", type=int, default=DEFAULT_CAPACITY,
                        metavar="N",
                        help="event ring-buffer capacity (keeps the "
                             "newest N events)")
    _add_scale_args(p_prof)
    p_prof.set_defaults(func=cmd_profile)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", type=_figure_number,
                       choices=range(6, 14), metavar="{6..13|fig06..fig13}")
    p_fig.add_argument("--per-category", type=int, default=None)
    _add_scale_args(p_fig)
    p_fig.set_defaults(func=cmd_figure)

    p_sweep = sub.add_parser(
        "sweep", help="sweep predictors × cores over the suite")
    p_sweep.add_argument("predictors", nargs="+",
                         help="predictor registry names")
    p_sweep.add_argument("--cores", nargs="+", default=["skylake"],
                         choices=("skylake", "skylake-2x"))
    p_sweep.add_argument("--per-category", type=int, default=None)
    p_sweep.add_argument("--per-workload", action="store_true",
                         help="also print per-workload tables")
    _add_scale_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_storage = sub.add_parser("storage", help="print Table I")
    p_storage.set_defaults(func=cmd_storage)

    p_report = sub.add_parser("report",
                              help="write a full reproduction report")
    p_report.add_argument("--output", default="report.md")
    p_report.add_argument("--figures", type=int, nargs="+",
                          default=[6, 7, 10, 12])
    p_report.add_argument("--per-category", type=int, default=None)
    p_report.add_argument("--oracle", action="store_true",
                          help="include the (slow) DDG-oracle bar")
    _add_scale_args(p_report)
    p_report.set_defaults(func=cmd_report)

    from repro.experiments.perfbench import (
        BASELINE_PATH,
        CHECK_TOLERANCE,
        DEFAULT_LENGTH as BENCH_LENGTH,
        DEFAULT_PREDICTORS,
        DEFAULT_REPEATS,
        DEFAULT_WORKLOADS,
    )

    p_bench = sub.add_parser(
        "bench", help="simulator performance benchmark (sim-KIPS)")
    p_bench.add_argument("--workloads", nargs="+",
                         default=list(DEFAULT_WORKLOADS))
    p_bench.add_argument("--predictors", nargs="+",
                         default=list(DEFAULT_PREDICTORS))
    p_bench.add_argument("--length", type=int, default=BENCH_LENGTH)
    p_bench.add_argument("--warmup", type=int, default=None)
    p_bench.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                         help="per-cell repeats; best time kept")
    p_bench.add_argument("--core", choices=("skylake", "skylake-2x"),
                         default="skylake")
    p_bench.add_argument("--no-slow", action="store_true",
                         help="skip the slow-path runs (no speedup "
                              "column; faster)")
    p_bench.add_argument("--output", default=None, metavar="FILE",
                         help="report path (default: BENCH_<date>.json)")
    p_bench.add_argument("--no-output", action="store_true",
                         help="do not write a BENCH_*.json file")
    p_bench.add_argument("--baseline", default=BASELINE_PATH, metavar="FILE",
                         help="committed baseline to compare against")
    p_bench.add_argument("--check", action="store_true",
                         help="exit non-zero on >tolerance speedup "
                              "regression or any cycle-count drift")
    p_bench.add_argument("--tolerance", type=float, default=CHECK_TOLERANCE,
                         help="--check regression tolerance (fraction)")
    p_bench.add_argument("--update-baseline", action="store_true",
                         help="overwrite the baseline with this run")
    p_bench.set_defaults(func=cmd_bench)

    p_cache = sub.add_parser(
        "cache", help="inspect, clear, or prune the result cache")
    p_cache.add_argument("action", choices=("stats", "clear", "prune"))
    p_cache.add_argument("--older-than", type=_parse_age, default=None,
                         metavar="AGE",
                         help="prune entries older than AGE "
                              "(e.g. 3600, 30m, 12h, 7d)")
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR")
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    workload = getattr(args, "workload", None)
    if workload is not None:
        try:
            get_profile(workload)
        except KeyError:
            print(f"unknown workload {workload!r} "
                  f"(see `repro list`)", file=sys.stderr)
            return 2
    names = list(getattr(args, "predictors", None) or ())
    for attr in ("predictor", "against"):
        value = getattr(args, attr, None)
        if value is not None and value != "baseline":
            names.append(value)
    for name in names:
        try:
            make_predictor(name)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
