"""repro — a reproduction of *Focused Value Prediction* (Bandishte et
al., ISCA 2020).

The package is a complete trace-driven micro-architecture laboratory:

* :mod:`repro.pipeline` — a cycle-level out-of-order core model
  (Skylake-like and a 2× scaled variant), hosting pluggable value
  predictors.
* :mod:`repro.core` — the paper's contribution: Focused Value
  Prediction (CIT + Learning Table + Value Table + Memory Renaming).
* :mod:`repro.predictors` — the prior-art baselines: LVP, stride, FCM,
  VTAGE, D-VTAGE, EVES, DLVP, the DLVP+EVES Composite, and Memory
  Renaming.
* :mod:`repro.trace` — a deterministic 60-workload synthetic suite
  standing in for the paper's SPEC/server traces.
* :mod:`repro.memory`, :mod:`repro.frontend` — the substrates: caches,
  prefetchers, DRAM, TAGE/ITTAGE.
* :mod:`repro.criticality` — Fields-style DDG analysis and the oracle.
* :mod:`repro.experiments` — one driver per paper figure/table.

Quickstart::

    from repro import simulate, CoreConfig, build_workload
    from repro.core import FVP

    trace = build_workload("omnetpp", length=100_000)
    baseline = simulate(trace, config=CoreConfig.skylake())
    focused = simulate(trace, config=CoreConfig.skylake(),
                       predictor=FVP())
    print(focused.ipc / baseline.ipc)

Traces also stream: ``repro.trace`` exposes a bounded-window
:class:`~repro.trace.source.TraceSource` protocol plus an mmap-backed
on-disk format, so million-op workloads simulate under a fixed RSS
budget (see docs/TRACES.md).
"""

from typing import List

from repro.core.fvp import FVP
from repro.isa.instruction import MicroOp
from repro.pipeline.config import CoreConfig
from repro.pipeline.engine import Engine, simulate
from repro.pipeline.results import SimResult
from repro.pipeline.vp_interface import Prediction, ValuePredictor
from repro.predictors import make_predictor
from repro.trace.builder import build_trace
from repro.trace.workloads import CATALOGUE, get_profile, workload_names

__version__ = "1.0.0"


def build_workload(name: str, length: int = 100_000) -> List[MicroOp]:
    """Build the named workload's deterministic trace.

    >>> trace = build_workload("mcf", length=1000)
    >>> len(trace) >= 1000
    True
    """
    return build_trace(get_profile(name), length)


__all__ = [
    "FVP",
    "MicroOp",
    "CoreConfig",
    "Engine",
    "simulate",
    "SimResult",
    "ValuePredictor",
    "Prediction",
    "make_predictor",
    "build_workload",
    "build_trace",
    "CATALOGUE",
    "get_profile",
    "workload_names",
    "__version__",
]
