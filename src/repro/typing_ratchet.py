"""The ``mypy --strict`` per-module ratchet.

CI's ``lint-strict`` job runs ``mypy --strict`` over exactly the
modules listed in :data:`STRICT_MODULES` (via ``tools/check_types.py``,
with the flags in ``mypy.ini``).  This tuple is the single source of
truth for what is ratcheted.  The contract is a ratchet: modules are
only ever *added* — a PR that edits a listed module must keep it
strict-clean, and a PR that annotates a new module appends it here in
the same change.

``repro doctor`` reports the current coverage percentage from this
file, so the number is visible without mypy installed (the local
container deliberately has no type-checker; CI is the enforcement
point).
"""

from __future__ import annotations

import pkgutil
from typing import List, Tuple

#: Modules (dotted, package-relative to ``repro``) that must pass
#: ``mypy --strict``.  Append-only — see the module docstring.
STRICT_MODULES: Tuple[str, ...] = (
    "repro.envreg",
    "repro.errors",
    "repro.isa",
    "repro.isa.instruction",
    "repro.isa.opcodes",
    "repro.isa.registers",
    "repro.lint",
    "repro.lint.cli",
    "repro.lint.core",
    "repro.lint.rules",
    "repro.service",
    "repro.service.board",
    "repro.service.client",
    "repro.service.daemon",
    "repro.service.protocol",
    "repro.service.wal",
    "repro.telemetry.schema",
    "repro.telemetry.stalls",
    "repro.typing_ratchet",
)


def all_modules() -> List[str]:
    """Every importable module under the ``repro`` package, sorted
    (walked from the package's file tree, no imports executed)."""
    import repro

    names = {"repro"}
    search = list(getattr(repro, "__path__", []))
    for info in pkgutil.walk_packages(search, prefix="repro."):
        names.add(info.name)
    return sorted(names)


def coverage() -> Tuple[int, int]:
    """``(strict modules, total modules)`` for the package."""
    return len(STRICT_MODULES), len(all_modules())


def coverage_percent() -> float:
    """Strict-clean share of the package's modules, in percent."""
    strict, total = coverage()
    return 100.0 * strict / total if total else 0.0


def missing() -> List[str]:
    """Ratchet entries that no longer exist as modules (stale entries
    would make CI vacuously green for them)."""
    existing = set(all_modules())
    return sorted(name for name in STRICT_MODULES
                  if name not in existing)


__all__ = [
    "STRICT_MODULES",
    "all_modules",
    "coverage",
    "coverage_percent",
    "missing",
]
