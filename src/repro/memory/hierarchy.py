"""Three-level data-cache hierarchy + DRAM, with prefetchers.

Latencies follow Table II of the paper: 32 KB 8-way L1D at 5 cycles,
256 KB 16-way private L2 at 15 cycles round trip, 8 MB 16-way shared
LLC at 40 cycles round trip, and a DDR4 model beyond that.  A PC-based
stride prefetcher trains at L1 and multi-stream prefetchers fill the
L2 and LLC, as in the baseline core.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.memory.cache import Cache
from repro.memory.dram import Dram, DramConfig
from repro.memory.prefetcher import StreamPrefetcher, StridePrefetcher

L1 = "L1"
L2 = "L2"
LLC = "LLC"
DRAM = "DRAM"

LEVELS = (L1, L2, LLC, DRAM)


class MemHierarchyConfig:
    """Geometry and latency knobs for :class:`MemoryHierarchy`."""

    __slots__ = ("l1_size", "l1_assoc", "l1_latency",
                 "l2_size", "l2_assoc", "l2_latency",
                 "llc_size", "llc_assoc", "llc_latency",
                 "line_bytes", "dram", "enable_prefetch")

    def __init__(self,
                 l1_size: int = 32 * 1024, l1_assoc: int = 8,
                 l1_latency: int = 5,
                 l2_size: int = 256 * 1024, l2_assoc: int = 16,
                 l2_latency: int = 15,
                 llc_size: int = 8 * 1024 * 1024, llc_assoc: int = 16,
                 llc_latency: int = 40,
                 line_bytes: int = 64,
                 dram: DramConfig = None,
                 enable_prefetch: bool = True) -> None:
        self.l1_size = l1_size
        self.l1_assoc = l1_assoc
        self.l1_latency = l1_latency
        self.l2_size = l2_size
        self.l2_assoc = l2_assoc
        self.l2_latency = l2_latency
        self.llc_size = llc_size
        self.llc_assoc = llc_assoc
        self.llc_latency = llc_latency
        self.line_bytes = line_bytes
        self.dram = dram or DramConfig(line_bytes=line_bytes)
        self.enable_prefetch = enable_prefetch

    @classmethod
    def skylake(cls) -> "MemHierarchyConfig":
        """The Table II configuration."""
        return cls()


class AccessResult(NamedTuple):
    """Outcome of one data access."""

    latency: int
    level: str


class MemoryHierarchy:
    """Functional cache/DRAM stack returning per-access latencies."""

    __slots__ = ("config", "l1", "l2", "llc", "dram",
                 "stride_pf", "stream_pf", "level_counts",
                 "_l1_result", "_l2_result", "_llc_result")

    def __init__(self, config: MemHierarchyConfig = None) -> None:
        cfg = config or MemHierarchyConfig()
        self.config = cfg
        self.l1 = Cache(cfg.l1_size, cfg.l1_assoc, cfg.line_bytes, name="L1D")
        self.l2 = Cache(cfg.l2_size, cfg.l2_assoc, cfg.line_bytes, name="L2")
        self.llc = Cache(cfg.llc_size, cfg.llc_assoc, cfg.line_bytes,
                         name="LLC")
        self.dram = Dram(cfg.dram)
        self.stride_pf = StridePrefetcher()
        self.stream_pf = StreamPrefetcher(line_bytes=cfg.line_bytes)
        self.level_counts = {level: 0 for level in LEVELS}
        # Fixed-latency outcomes are immutable: share one instance per
        # level instead of constructing a NamedTuple per access.
        self._l1_result = AccessResult(cfg.l1_latency, L1)
        self._l2_result = AccessResult(cfg.l2_latency, L2)
        self._llc_result = AccessResult(cfg.llc_latency, LLC)

    # ------------------------------------------------------------------
    def access(self, pc: int, addr: int, cycle: int,
               is_store: bool = False) -> AccessResult:
        """Perform a demand access; returns latency and the hit level.

        Stores are modelled write-allocate/write-back: they probe the
        hierarchy like loads (the store buffer hides their latency in
        the timing model, but they still move lines and train
        prefetchers).
        """
        front = self.access_front(pc, addr, is_store=is_store)
        if front is not None:
            return front
        latency = self.config.llc_latency + self.dram.access(addr, cycle)
        return AccessResult(latency, DRAM)

    def access_front(self, pc: int, addr: int,
                     is_store: bool = False) -> Optional[AccessResult]:
        """The cache-side half of :meth:`access`: prefetcher training,
        L1/L2/LLC lookups and level accounting — everything whose state
        evolution depends only on the program-order access stream,
        never on issue cycles.  Returns ``None`` when the access misses
        all the way to DRAM; the caller owes exactly one
        ``dram.access(addr, cycle)`` call for it (DRAM bank queueing is
        the one timing-coupled piece of the hierarchy).

        The vector engine backend (docs/VECTOR.md) pre-passes whole
        windows through this front half in program order and defers
        only the DRAM tail calls into its timestamp recurrence, which
        keeps results bit-identical to the one-call-per-op loops.
        """
        cfg = self.config
        prefetch = cfg.enable_prefetch
        if prefetch:
            for pf_addr in self.stride_pf.train(pc, addr):
                self._prefetch_fill(pf_addr, into_l1=True)

        counts = self.level_counts
        if self.l1.lookup(addr):
            counts[L1] += 1
            return self._l1_result

        # L1 miss: train the stream prefetcher on the miss stream.
        if prefetch:
            for pf_addr in self.stream_pf.train(addr):
                self._prefetch_fill(pf_addr, into_l1=False)

        if self.l2.lookup(addr):
            counts[L2] += 1
            return self._l2_result
        if self.llc.lookup(addr):
            counts[LLC] += 1
            return self._llc_result
        counts[DRAM] += 1
        return None

    def _prefetch_fill(self, addr: int, into_l1: bool) -> None:
        """Install a prefetched line: stride prefetches fill L1+L2,
        stream prefetches fill L2+LLC (per Table II)."""
        if into_l1:
            self.l1.fill(addr, prefetch=True)
            self.l2.fill(addr, prefetch=True)
        else:
            self.l2.fill(addr, prefetch=True)
        self.llc.fill(addr, prefetch=True)

    # ------------------------------------------------------------------
    def probe_level(self, addr: int) -> str:
        """Which level would serve ``addr`` right now (no state change)."""
        if self.l1.probe(addr):
            return L1
        if self.l2.probe(addr):
            return L2
        if self.llc.probe(addr):
            return LLC
        return DRAM

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.llc.reset_stats()
        self.dram.reset_stats()
        self.level_counts = {level: 0 for level in LEVELS}

    def stats(self) -> dict:
        """Aggregate statistics snapshot (for reports and tests)."""
        total = sum(self.level_counts.values())
        return {
            "accesses": total,
            "level_counts": dict(self.level_counts),
            "l1_hit_rate": self.l1.hit_rate,
            "l2_hit_rate": self.l2.hit_rate,
            "llc_hit_rate": self.llc.hit_rate,
            "dram_row_hit_rate": self.dram.row_hit_rate,
        }

    def publish_stats(self, group) -> None:
        """Register the hierarchy's statistics into a telemetry
        :class:`~repro.telemetry.stats.StatGroup` — one child group per
        cache plus the DRAM row-state counters."""
        for cache in (self.l1, self.l2, self.llc):
            sub = group.group(cache.name.lower())
            sub.counter("hits", value=cache.hits)
            sub.counter("misses", value=cache.misses)
            sub.counter("prefetch_fills", value=cache.prefetch_fills)
            sub.counter("prefetch_hits", value=cache.prefetch_hits)
        dram = group.group("dram")
        dram.counter("accesses", value=self.dram.accesses)
        dram.counter("row_hits", value=self.dram.row_hits)
        dram.counter("row_misses", value=self.dram.row_misses)
        dram.counter("row_conflicts", value=self.dram.row_conflicts)
