"""Set-associative cache with LRU replacement.

A compact functional cache used at every level of the hierarchy.  The
timing model only needs hit/miss outcomes (latency is owned by
:mod:`repro.memory.hierarchy`), so the cache tracks presence and
recency, plus statistics.

Implementation notes: each set is a ``dict`` mapping tag to a
monotonically increasing access stamp.  Associativities are small
(8-16), so LRU eviction scans the set for the minimum stamp rather
than maintaining an ordered structure; this is faster in CPython for
these sizes and keeps the code simple.
"""

from __future__ import annotations

from typing import List
from repro.errors import ConfigError


def _check_power_of_two(name: str, value: int) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


class Cache:
    """One level of a cache hierarchy.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    assoc:
        Ways per set.
    line_bytes:
        Cache line size (must divide ``size_bytes / assoc``).
    name:
        Label used in statistics and reprs.
    """

    __slots__ = ("name", "size_bytes", "assoc", "line_bytes", "num_sets",
                 "_set_shift", "_set_mask", "_tag_shift", "_sets", "_stamp",
                 "hits", "misses", "prefetch_fills", "prefetch_hits",
                 "_prefetched")

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int = 64,
                 name: str = "cache") -> None:
        _check_power_of_two("size_bytes", size_bytes)
        _check_power_of_two("assoc", assoc)
        _check_power_of_two("line_bytes", line_bytes)
        num_sets = size_bytes // (assoc * line_bytes)
        if num_sets < 1:
            raise ConfigError("cache has no sets: size too small for "
                             f"assoc={assoc} line={line_bytes}")
        _check_power_of_two("num_sets", num_sets)
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = num_sets
        self._set_shift = line_bytes.bit_length() - 1
        self._set_mask = num_sets - 1
        self._tag_shift = self._set_mask.bit_length()
        self._sets: List[dict] = [dict() for _ in range(num_sets)]
        self._prefetched: List[set] = [set() for _ in range(num_sets)]
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.prefetch_hits = 0

    # ------------------------------------------------------------------
    def _index_tag(self, addr: int):
        line = addr >> self._set_shift
        return line & self._set_mask, line >> self._tag_shift

    def lookup(self, addr: int) -> bool:
        """Access the cache; returns True on hit.  Updates LRU state and
        fills the line on a miss (allocate-on-miss at every level)."""
        line = addr >> self._set_shift
        index = line & self._set_mask
        tag = line >> self._tag_shift
        cache_set = self._sets[index]
        self._stamp += 1
        if tag in cache_set:
            cache_set[tag] = self._stamp
            self.hits += 1
            pf_tags = self._prefetched[index]
            if tag in pf_tags:
                self.prefetch_hits += 1
                pf_tags.discard(tag)
            return True
        self.misses += 1
        self._fill(index, tag, prefetch=False)
        return False

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no LRU update, no fill)."""
        line = addr >> self._set_shift
        return (line >> self._tag_shift) in self._sets[line & self._set_mask]

    def fill(self, addr: int, prefetch: bool = False) -> None:
        """Install a line without counting a demand access (used for
        prefetches and for inclusive fills from lower levels)."""
        line = addr >> self._set_shift
        index = line & self._set_mask
        tag = line >> self._tag_shift
        if tag in self._sets[index]:
            return
        self._fill(index, tag, prefetch=prefetch)

    def _fill(self, index: int, tag: int, prefetch: bool) -> None:
        cache_set = self._sets[index]
        self._stamp += 1
        if len(cache_set) >= self.assoc:
            victim = min(cache_set, key=cache_set.__getitem__)
            del cache_set[victim]
            self._prefetched[index].discard(victim)
        cache_set[tag] = self._stamp
        if prefetch:
            self.prefetch_fills += 1
            self._prefetched[index].add(tag)

    def invalidate(self, addr: int) -> bool:
        """Drop a line if present; returns True if it was present."""
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        if tag in cache_set:
            del cache_set[tag]
            self._prefetched[index].discard(tag)
            return True
        return False

    def reset_stats(self) -> None:
        self.hits = self.misses = 0
        self.prefetch_fills = self.prefetch_hits = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Cache {self.name} {self.size_bytes >> 10}KB "
                f"{self.assoc}-way hits={self.hits} misses={self.misses}>")
