"""Hardware prefetchers.

The baseline core (Table II of the paper) has "aggressive multi-stream
prefetching into the L2 and LLC" and a "PC based stride prefetcher at
L1".  Both are implemented here as trainers that observe demand
accesses and emit prefetch line addresses; the hierarchy decides which
level to fill.
"""

from __future__ import annotations

from typing import List
from repro.errors import ConfigError

#: Shared "nothing to prefetch" result — the overwhelmingly common
#: outcome; returning a fresh list per access shows up in profiles.
_NO_PREFETCH: List[int] = []


class StridePrefetcher:
    """PC-indexed stride prefetcher (L1).

    Classic RPT design: per-PC entry holding the last address, the last
    observed stride, and a 2-bit confidence.  Once confidence reaches
    the threshold, it prefetches ``degree`` lines ahead along the
    stride.
    """

    __slots__ = ("entries", "table_size", "degree", "threshold", "issued")

    def __init__(self, table_size: int = 64, degree: int = 2,
                 threshold: int = 2) -> None:
        if table_size <= 0:
            raise ConfigError("table_size must be positive")
        self.table_size = table_size
        self.degree = degree
        self.threshold = threshold
        # pc -> [last_addr, stride, confidence]
        self.entries = {}
        self.issued = 0

    def train(self, pc: int, addr: int) -> List[int]:
        """Observe a demand access; return prefetch addresses (bytes)."""
        entries = self.entries
        entry = entries.get(pc)
        if entry is None:
            if len(entries) >= self.table_size:
                # FIFO-ish eviction: drop the oldest inserted entry.
                entries.pop(next(iter(entries)))
            entries[pc] = [addr, 0, 0]
            return _NO_PREFETCH
        stride = entry[1]
        new_stride = addr - entry[0]
        if new_stride == stride and stride != 0:
            confidence = entry[2] + 1
            if confidence > 3:
                confidence = 3
        else:
            confidence = entry[2] if stride == new_stride else 0
            stride = new_stride
        entry[0] = addr
        entry[1] = stride
        entry[2] = confidence
        if confidence >= self.threshold and stride != 0:
            out = [addr + stride * i for i in range(1, self.degree + 1)]
            self.issued += len(out)
            return out
        return _NO_PREFETCH


class StreamPrefetcher:
    """Multi-stream next-line prefetcher (L2/LLC).

    Tracks up to ``num_streams`` active physical-address streams.  A
    stream is allocated on a miss; two hits in the same direction
    confirm it, after which accesses near the stream head prefetch
    ``degree`` lines ahead.
    """

    __slots__ = ("streams", "num_streams", "degree", "line_bytes",
                 "window_lines", "issued", "_clock")

    def __init__(self, num_streams: int = 16, degree: int = 4,
                 line_bytes: int = 64, window_lines: int = 16) -> None:
        self.num_streams = num_streams
        self.degree = degree
        self.line_bytes = line_bytes
        self.window_lines = window_lines
        # list of [head_line, direction, confirmed, last_used_clock]
        self.streams: List[list] = []
        self.issued = 0
        self._clock = 0

    def train(self, addr: int) -> List[int]:
        """Observe a demand access; return prefetch addresses (bytes)."""
        self._clock += 1
        line = addr // self.line_bytes
        for stream in self.streams:
            head, direction, confirmed, _ = stream
            delta = line - head
            in_window = abs(delta) <= self.window_lines
            matches = in_window and (not confirmed or direction * delta >= 0)
            if matches:
                stream[3] = self._clock
                if delta != 0:
                    stream[0] = line
                    if not confirmed:
                        # First movement fixes the stream direction.
                        stream[1] = 1 if delta > 0 else -1
                        direction = stream[1]
                        stream[2] = True
                        confirmed = True
                if confirmed:
                    out = [
                        (line + direction * i) * self.line_bytes
                        for i in range(1, self.degree + 1)
                    ]
                    self.issued += len(out)
                    return out
                return _NO_PREFETCH
        self._allocate(line)
        return _NO_PREFETCH

    def _allocate(self, line: int) -> None:
        if len(self.streams) >= self.num_streams:
            oldest = min(range(len(self.streams)),
                         key=lambda i: self.streams[i][3])
            self.streams.pop(oldest)
        # Allocate ascending and descending candidates as one stream with
        # direction decided by the first subsequent access; default +1.
        self.streams.append([line, 1, False, self._clock])
