"""DDR4 main-memory timing model.

Models the configuration in Table II of the paper: two DDR4-2133
channels, two ranks per channel, eight banks per rank, 64-bit data bus
per channel, 2 KB row buffer per bank, 15-15-15-39 timings
(tCAS-tRCD-tRP-tRAS, in DRAM bus clocks).

The model keeps per-bank open-row state and a per-bank busy-until time.
An access latency is::

    queue_wait + row_access + bus_transfer

where ``row_access`` is tCAS for a row-buffer hit, tRCD+tCAS for an
access to a closed row (empty page), and tRP+tRCD+tCAS for a row-buffer
conflict.  Times are converted to CPU cycles via ``cpu_per_dram_clock``
(3.2 GHz core, 1066 MHz DDR4-2133 bus clock → 3 CPU cycles per DRAM
clock).
"""

from __future__ import annotations

from typing import Tuple


class DramConfig:
    """Timing/geometry knobs for :class:`Dram`."""

    __slots__ = ("channels", "ranks_per_channel", "banks_per_rank",
                 "row_bytes", "tcas", "trcd", "trp", "tras",
                 "cpu_per_dram_clock", "burst_clocks", "line_bytes")

    def __init__(self, channels: int = 2, ranks_per_channel: int = 2,
                 banks_per_rank: int = 8, row_bytes: int = 2048,
                 tcas: int = 15, trcd: int = 15, trp: int = 15,
                 tras: int = 39, cpu_per_dram_clock: int = 3,
                 burst_clocks: int = 4, line_bytes: int = 64) -> None:
        self.channels = channels
        self.ranks_per_channel = ranks_per_channel
        self.banks_per_rank = banks_per_rank
        self.row_bytes = row_bytes
        self.tcas = tcas
        self.trcd = trcd
        self.trp = trp
        self.tras = tras
        self.cpu_per_dram_clock = cpu_per_dram_clock
        self.burst_clocks = burst_clocks
        self.line_bytes = line_bytes

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank


class Dram:
    """Open-page DDR4 model returning per-access latency in CPU cycles."""

    __slots__ = ("config", "_open_row", "_busy_until",
                 "row_hits", "row_misses", "row_conflicts", "accesses")

    def __init__(self, config: DramConfig = None) -> None:
        self.config = config or DramConfig()
        banks = self.config.total_banks
        self._open_row = [-1] * banks
        self._busy_until = [0] * banks
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.accesses = 0

    def _map(self, addr: int) -> Tuple[int, int]:
        """Address interleave: line-granular channel/bank hash, row from
        the higher bits.  Returns (bank_index, row)."""
        cfg = self.config
        line = addr // cfg.line_bytes
        bank = line % cfg.total_banks
        row = addr // (cfg.row_bytes * cfg.total_banks)
        return bank, row

    def access(self, addr: int, cycle: int) -> int:
        """Issue a line read at CPU time ``cycle``; returns total latency
        in CPU cycles (including bank queueing)."""
        cfg = self.config
        bank, row = self._map(addr)
        self.accesses += 1

        start = max(cycle, self._busy_until[bank])
        queue_wait = start - cycle

        open_row = self._open_row[bank]
        if open_row == row:
            self.row_hits += 1
            dram_clocks = cfg.tcas
        elif open_row == -1:
            self.row_misses += 1
            dram_clocks = cfg.trcd + cfg.tcas
        else:
            self.row_conflicts += 1
            dram_clocks = cfg.trp + cfg.trcd + cfg.tcas
        self._open_row[bank] = row

        service = (dram_clocks + cfg.burst_clocks) * cfg.cpu_per_dram_clock
        self._busy_until[bank] = start + service
        return queue_wait + service

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.row_hits = self.row_misses = self.row_conflicts = 0
        self.accesses = 0
