"""Memory subsystem: caches, prefetchers, DRAM, and dependence prediction."""

from repro.memory.cache import Cache
from repro.memory.disambiguation import StoreSets
from repro.memory.dram import Dram, DramConfig
from repro.memory.hierarchy import (
    DRAM,
    L1,
    L2,
    LEVELS,
    LLC,
    AccessResult,
    MemHierarchyConfig,
    MemoryHierarchy,
)
from repro.memory.prefetcher import StreamPrefetcher, StridePrefetcher

__all__ = [
    "Cache",
    "StoreSets",
    "Dram",
    "DramConfig",
    "MemoryHierarchy",
    "MemHierarchyConfig",
    "AccessResult",
    "StridePrefetcher",
    "StreamPrefetcher",
    "L1",
    "L2",
    "LLC",
    "DRAM",
    "LEVELS",
]
