"""Store-sets memory-dependence predictor (Chrysos & Emer, ISCA '98).

Table II's baseline has an "aggressive memory disambiguation
predictor"; FVP's memory-renaming component also builds on accurate
store→load dependence learning.  This module implements the classic
store-sets scheme:

* ``SSIT`` (store-set ID table): PC-indexed, maps loads and stores to a
  store-set identifier.
* ``LFST`` (last fetched store table): per store-set, the most recent
  in-flight store.

A load predicted dependent on an in-flight store waits for that store;
otherwise it issues speculatively.  When the engine detects an actual
ordering violation (a load issued before an older overlapping store),
it calls :meth:`StoreSets.record_violation`, which merges the two PCs
into one store set — the self-correcting learning rule of the paper.
"""

from __future__ import annotations

from typing import Optional
from repro.errors import ConfigError


class StoreSets:
    """Store-sets dependence predictor.

    Parameters
    ----------
    ssit_size:
        Number of SSIT entries (PC hashed modulo this size).
    lfst_size:
        Number of store sets trackable simultaneously.
    """

    __slots__ = ("ssit_size", "lfst_size", "_ssit", "_lfst",
                 "_next_set_id", "violations", "predictions")

    def __init__(self, ssit_size: int = 1024, lfst_size: int = 128) -> None:
        if ssit_size <= 0 or lfst_size <= 0:
            raise ConfigError("table sizes must be positive")
        self.ssit_size = ssit_size
        self.lfst_size = lfst_size
        self._ssit = {}  # pc_hash -> set id
        self._lfst = {}  # set id -> store sequence number (in flight)
        self._next_set_id = 0
        self.violations = 0
        self.predictions = 0

    def _hash(self, pc: int) -> int:
        return pc % self.ssit_size

    # ------------------------------------------------------------------
    def store_dispatched(self, pc: int, seqnum: int) -> None:
        """A store enters the window: it becomes the last fetched store
        of its set (if it has one)."""
        set_id = self._ssit.get(self._hash(pc))
        if set_id is not None:
            self._lfst[set_id] = seqnum

    def store_completed(self, pc: int, seqnum: int) -> None:
        """A store leaves the window; clear the LFST if it still points
        at this store."""
        set_id = self._ssit.get(self._hash(pc))
        if set_id is not None and self._lfst.get(set_id) == seqnum:
            del self._lfst[set_id]

    def load_dependence(self, pc: int) -> Optional[int]:
        """Predicted producer store (sequence number) for a load about
        to dispatch, or ``None`` if the load may issue speculatively."""
        set_id = self._ssit.get(self._hash(pc))
        if set_id is None:
            return None
        seqnum = self._lfst.get(set_id)
        if seqnum is not None:
            self.predictions += 1
        return seqnum

    def record_violation(self, load_pc: int, store_pc: int) -> None:
        """Merge the load and store into one store set (the assignment
        rules of Chrysos & Emer, simplified to 'smaller id wins')."""
        self.violations += 1
        load_key = self._hash(load_pc)
        store_key = self._hash(store_pc)
        load_set = self._ssit.get(load_key)
        store_set = self._ssit.get(store_key)
        if load_set is None and store_set is None:
            set_id = self._allocate_set()
            self._ssit[load_key] = set_id
            self._ssit[store_key] = set_id
        elif load_set is None:
            self._ssit[load_key] = store_set
        elif store_set is None:
            self._ssit[store_key] = load_set
        else:
            winner = min(load_set, store_set)
            self._ssit[load_key] = winner
            self._ssit[store_key] = winner

    def _allocate_set(self) -> int:
        set_id = self._next_set_id % self.lfst_size
        self._next_set_id += 1
        return set_id

    def clear(self) -> None:
        """Periodic cyclic clearing (prevents stale over-serialization)."""
        self._ssit.clear()
        self._lfst.clear()
