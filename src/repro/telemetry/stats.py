"""The statistic tree: named, mergeable, serialisable counters.

Every simulation builds one :class:`StatGroup` root; components
register child groups and leaf statistics under stable dotted names
(``frontend.mispredicts``, ``pipeline.stalls.rob-full``, ...).  The
tree replaces the ad-hoc per-component stat dicts: one shape for
reporting, one serializer for the campaign cache, and one ``merge``
for aggregating runs.

Design rules
------------
* Leaf values are plain numbers — a :class:`Counter` holds one number,
  a :class:`Histogram` holds integer bucket counts keyed by
  power-of-two lower bounds.
* Names are stable identifiers (``[a-z0-9_.-]``); the dot is reserved
  as the path separator in :meth:`StatGroup.flat`.
* Everything round-trips through :meth:`to_dict` / :meth:`from_dict`
  (pure JSON types), and two trees compare equal iff they have the
  same shape and values — the property the campaign cache's
  hit-equals-rerun guarantee rests on.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

Number = Union[int, float]

_SEPARATOR = "."


def _check_name(name: str) -> str:
    if not name or _SEPARATOR in name:
        raise ValueError(f"bad stat name {name!r} "
                         f"(must be non-empty, no {_SEPARATOR!r})")
    return name


class Counter:
    """A single named number (int or float)."""

    __slots__ = ("name", "desc", "value")

    def __init__(self, name: str, desc: str = "",
                 value: Number = 0) -> None:
        self.name = _check_name(name)
        self.desc = desc
        self.value = value

    def add(self, amount: Number = 1) -> None:
        self.value += amount

    def set(self, value: Number) -> None:
        self.value = value

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"kind": "counter", "desc": self.desc, "value": self.value}

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Counter":
        return cls(name, payload.get("desc", ""), payload["value"])

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counter):
            return NotImplemented
        return self.name == other.name and self.value == other.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """Power-of-two histogram: sample *v* lands in bucket
    ``1 << v.bit_length() - 1`` (0 gets its own bucket), so tails stay
    compact no matter how long a stall runs."""

    __slots__ = ("name", "desc", "buckets", "count", "total")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = _check_name(name)
        self.desc = desc
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    @staticmethod
    def bucket_of(value: int) -> int:
        if value <= 0:
            return 0
        return 1 << (int(value).bit_length() - 1)

    def observe(self, value: int, weight: int = 1) -> None:
        bucket = self.bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + weight
        self.count += weight
        self.total += value * weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"kind": "histogram", "desc": self.desc,
                "buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())},
                "count": self.count, "total": self.total}

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Histogram":
        hist = cls(name, payload.get("desc", ""))
        hist.buckets = {int(k): v for k, v in payload["buckets"].items()}
        hist.count = payload["count"]
        hist.total = payload["total"]
        return hist

    def merge(self, other: "Histogram") -> None:
        for bucket, weight in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + weight
        self.count += other.count
        self.total += other.total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.name == other.name and self.buckets == other.buckets
                and self.count == other.count and self.total == other.total)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.2f}>"


Stat = Union[Counter, Histogram, "StatGroup"]


class StatGroup:
    """An ordered, named tree node holding counters, histograms, and
    child groups."""

    __slots__ = ("name", "desc", "children")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = _check_name(name)
        self.desc = desc
        self.children: Dict[str, Stat] = {}

    # -- registration --------------------------------------------------
    def _register(self, stat: Stat) -> Stat:
        if stat.name in self.children:
            raise ValueError(
                f"duplicate stat {stat.name!r} in group {self.name!r}")
        self.children[stat.name] = stat
        return stat

    def counter(self, name: str, desc: str = "",
                value: Number = 0) -> Counter:
        return self._register(Counter(name, desc, value))

    def histogram(self, name: str, desc: str = "") -> Histogram:
        return self._register(Histogram(name, desc))

    def group(self, name: str, desc: str = "") -> "StatGroup":
        """Child group, created on first use."""
        existing = self.children.get(name)
        if existing is not None:
            if not isinstance(existing, StatGroup):
                raise ValueError(f"{name!r} is a leaf, not a group")
            return existing
        child = StatGroup(name, desc)
        self.children[name] = child
        return child

    def counters_from(self, mapping: Dict[str, Number]) -> None:
        """Bulk-register one counter per mapping entry (snapshot
        publication for components that keep plain attributes hot)."""
        for name, value in mapping.items():
            self.counter(name, value=value)

    # -- access --------------------------------------------------------
    def __getitem__(self, path: str) -> Stat:
        """Child by name or dotted path (``"stalls.rob-full"``)."""
        node: Stat = self
        for part in path.split(_SEPARATOR):
            if not isinstance(node, StatGroup):
                raise KeyError(path)
            node = node.children[part]
        return node

    def get(self, path: str, default=None):
        try:
            return self[path]
        except KeyError:
            return default

    def value(self, path: str) -> Number:
        """Counter value by dotted path."""
        stat = self[path]
        if not isinstance(stat, Counter):
            raise KeyError(f"{path} is not a counter")
        return stat.value

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, Stat]]:
        """Depth-first (dotted-path, leaf) pairs."""
        for name, child in self.children.items():
            path = f"{prefix}{name}"
            if isinstance(child, StatGroup):
                yield from child.walk(path + _SEPARATOR)
            else:
                yield path, child

    def flat(self) -> Dict[str, Number]:
        """Dotted-path → value for every counter leaf (histograms
        contribute their mean under ``<path>:mean``)."""
        out: Dict[str, Number] = {}
        for path, leaf in self.walk():
            if isinstance(leaf, Counter):
                out[path] = leaf.value
            else:
                out[path + ":mean"] = leaf.mean
        return out

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"kind": "group", "desc": self.desc,
                "children": {name: child.to_dict()
                             for name, child in self.children.items()}}

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "StatGroup":
        group = cls(name, payload.get("desc", ""))
        for child_name, child in payload["children"].items():
            kind = child["kind"]
            if kind == "group":
                group.children[child_name] = StatGroup.from_dict(
                    child_name, child)
            elif kind == "counter":
                group.children[child_name] = Counter.from_dict(
                    child_name, child)
            elif kind == "histogram":
                group.children[child_name] = Histogram.from_dict(
                    child_name, child)
            else:
                raise ValueError(f"unknown stat kind {kind!r}")
        return group

    def merge(self, other: "StatGroup") -> None:
        """Accumulate ``other`` into this tree.  Leaves add; groups
        recurse; children unique to ``other`` are deep-copied in."""
        for name, child in other.children.items():
            mine = self.children.get(name)
            if mine is None:
                self.children[name] = _copy(child)
            elif type(mine) is not type(child):
                raise ValueError(
                    f"merge shape mismatch at {name!r}: "
                    f"{type(mine).__name__} vs {type(child).__name__}")
            else:
                mine.merge(child)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatGroup):
            return NotImplemented
        return self.name == other.name and self.children == other.children

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StatGroup {self.name} ({len(self.children)} children)>"


def _copy(stat: Stat) -> Stat:
    if isinstance(stat, StatGroup):
        return StatGroup.from_dict(stat.name, stat.to_dict())
    if isinstance(stat, Counter):
        return Counter.from_dict(stat.name, stat.to_dict())
    return Histogram.from_dict(stat.name, stat.to_dict())


__all__ = ["Counter", "Histogram", "StatGroup"]
