"""Event-trace exporters: ``chrome://tracing`` JSON and CSV.

The Chrome trace format (a.k.a. Trace Event Format) renders in
``chrome://tracing`` / Perfetto's legacy loader: each traced micro-op
becomes one complete (``"ph": "X"``) slice from allocation to
retirement with its issue/complete milestones in ``args``, laid out
over a small number of lanes so overlapping lifetimes stay readable;
flushes become global instant events.  Timestamps are cycles (the
viewer's "µs" axis reads as cycles).

The CSV export is one row per raw event — the shape spreadsheet /
pandas post-processing wants.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.isa import opcodes
from repro.telemetry.trace import Event, EventTrace

#: Display lanes ("threads") used to unstack overlapping op lifetimes.
LANES = 16


def chrome_trace(trace: EventTrace, process_name: str = "repro") -> dict:
    """The trace as a Trace-Event-Format dict (``json.dump`` it, or use
    :func:`write_chrome_trace`)."""
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": process_name},
    }]
    spans: Dict[int, Dict[str, Event]] = {}
    for event in trace:
        if event.kind == "flush":
            events.append({
                "name": event.detail or "flush", "ph": "i", "s": "g",
                "pid": 0, "tid": 0, "ts": event.cycle,
                "args": {"seq": event.seq, "pc": hex(event.pc)},
            })
        else:
            spans.setdefault(event.seq, {})[event.kind] = event
    for seq in sorted(spans):
        milestones = spans[seq]
        alloc = milestones.get("alloc")
        retire = milestones.get("retire")
        if alloc is None or retire is None:
            continue  # truncated by the ring boundary
        args = {"seq": seq, "pc": hex(alloc.pc)}
        for kind in ("issue", "complete"):
            if kind in milestones:
                args[kind] = milestones[kind].cycle
        events.append({
            "name": f"{opcodes.op_name(alloc.op)}@{alloc.pc:#x}",
            "cat": opcodes.op_name(alloc.op),
            "ph": "X", "pid": 0, "tid": seq % LANES,
            "ts": alloc.cycle,
            "dur": max(retire.cycle - alloc.cycle, 1),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, trace: EventTrace,
                       process_name: str = "repro") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(trace, process_name), handle)


CSV_HEADER = ("cycle", "kind", "seq", "pc", "op", "detail")


def csv_trace(trace: EventTrace) -> str:
    """The trace as CSV text, one row per event."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(CSV_HEADER)
    for event in trace:
        writer.writerow((event.cycle, event.kind, event.seq,
                         f"{event.pc:#x}", opcodes.op_name(event.op),
                         event.detail))
    return out.getvalue()


def write_csv_trace(path: str, trace: EventTrace) -> None:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(csv_trace(trace))


__all__ = ["LANES", "CSV_HEADER", "chrome_trace", "write_chrome_trace",
           "csv_trace", "write_csv_trace"]
