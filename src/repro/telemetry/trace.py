"""Bounded pipeline event trace.

An opt-in ring buffer (``Engine(..., collect_events=True)``) recording
one event per pipeline milestone — ``alloc``, ``issue``, ``complete``,
``retire`` — plus ``flush`` events carrying their cause
(``branch-flush`` / ``vp-flush`` / ``mem-flush``).  The buffer is
bounded (default 2^16 events ≈ four events per op over the last ~16k
ops), so tracing a long run keeps the *tail*, which is what you want
when a profile points at a steady-state pathology.

Exporters live in :mod:`repro.telemetry.export`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, NamedTuple, Optional
from repro.errors import ConfigError

DEFAULT_CAPACITY = 1 << 16

#: Milestones recorded for every traced micro-op, in pipeline order.
KINDS = ("alloc", "issue", "complete", "retire", "flush")


class Event(NamedTuple):
    """One pipeline milestone.

    ``cycle``   when it happened;
    ``kind``    one of :data:`KINDS`;
    ``seq``     dynamic sequence number of the micro-op;
    ``pc``      its program counter;
    ``op``      its opcode class (``repro.isa.opcodes`` constant);
    ``detail``  flush cause for ``flush`` events, else "".
    """

    cycle: int
    kind: str
    seq: int
    pc: int
    op: int
    detail: str = ""


class EventTrace:
    """Fixed-capacity ring buffer of :class:`Event` records."""

    __slots__ = ("capacity", "dropped", "_ring")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: Events evicted from the ring (oldest-first) — lets reports
        #: say "showing the last N of M".
        self.dropped = 0
        self._ring: Deque[Event] = deque(maxlen=capacity)

    def record(self, cycle: int, kind: str, seq: int, pc: int, op: int,
               detail: str = "") -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(Event(cycle, kind, seq, pc, op, detail))

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._ring)

    def events(self) -> List[Event]:
        """Chronological snapshot of the retained window."""
        return list(self._ring)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"capacity": self.capacity, "dropped": self.dropped,
                "events": [list(event) for event in self._ring]}

    @classmethod
    def from_dict(cls, payload: dict) -> "EventTrace":
        trace = cls(payload["capacity"])
        trace.dropped = payload["dropped"]
        for fields in payload["events"]:
            trace._ring.append(Event(*fields))
        return trace

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventTrace):
            return NotImplemented
        return (self.capacity == other.capacity
                and self.dropped == other.dropped
                and self._ring == other._ring)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<EventTrace {len(self._ring)}/{self.capacity} events, "
                f"{self.dropped} dropped>")


__all__ = ["DEFAULT_CAPACITY", "KINDS", "Event", "EventTrace"]
