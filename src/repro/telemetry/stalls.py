"""The top-down stall taxonomy.

Every cycle of a simulation is charged to exactly one bucket:
``retiring`` when at least one micro-op retires that cycle, otherwise
the cause that kept the ROB head from retiring.  The attribution is
*exact by construction* — the engine charges the gap between
consecutive retirement cycles as it schedules each op, so

    sum(stall_cycles.values()) == SimResult.cycles

holds for every workload/core/predictor combination (asserted in
``tests/test_telemetry.py``).  Warmup cycles are accumulated into a
separate dict so the reported breakdown covers only the measured
region.

Bucket semantics (the cause the ROB head was bound by):

=====================  ==============================================
``retiring``           at least one op retired this cycle
``frontend-starved``   allocation bound by fetch (I-cache bubbles or
                       fetch bandwidth)
``rob-full``           allocation bound by the reorder-buffer window
``iq-full``            allocation bound by issue-queue occupancy
``lq-full``            allocation bound by load-queue occupancy
``sq-full``            allocation bound by store-queue occupancy
``port-contention``    ready but waiting for an execution port or an
                       issue slot
``head-waiting-on-load``  head op is a load in the memory system, or
                       is waiting on a load producer's data
``head-waiting-on-exec``  head op (or its producer) is still executing
                       on a non-load unit
``branch-flush``       allocation bound by a control-mispredict
                       redirect
``vp-flush``           allocation bound by a value-mispredict redirect
``mem-flush``          allocation bound by a memory-ordering-violation
                       redirect
=====================  ==============================================
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

RETIRING = "retiring"
FRONTEND_STARVED = "frontend-starved"
ROB_FULL = "rob-full"
IQ_FULL = "iq-full"
LQ_FULL = "lq-full"
SQ_FULL = "sq-full"
PORT_CONTENTION = "port-contention"
HEAD_WAIT_LOAD = "head-waiting-on-load"
HEAD_WAIT_EXEC = "head-waiting-on-exec"
BRANCH_FLUSH = "branch-flush"
VP_FLUSH = "vp-flush"
MEM_FLUSH = "mem-flush"

#: Non-retiring causes, in reporting order (front of the machine to
#: the back, flush recovery last).
STALL_BUCKETS = (
    FRONTEND_STARVED,
    ROB_FULL,
    IQ_FULL,
    LQ_FULL,
    SQ_FULL,
    PORT_CONTENTION,
    HEAD_WAIT_LOAD,
    HEAD_WAIT_EXEC,
    BRANCH_FLUSH,
    VP_FLUSH,
    MEM_FLUSH,
)

#: Every bucket, ``retiring`` first — the full partition of cycles.
ALL_BUCKETS = (RETIRING,) + STALL_BUCKETS


def empty_buckets() -> Dict[str, int]:
    """A zeroed cycle-accounting dict covering the full taxonomy."""
    return {bucket: 0 for bucket in ALL_BUCKETS}


def cpi_breakdown(stall_cycles: Mapping[str, int],
                  instructions: int) -> Dict[str, float]:
    """Per-bucket cycles-per-instruction; the values sum to the run's
    CPI when ``stall_cycles`` covers all its cycles."""
    if not instructions:
        return {bucket: 0.0 for bucket in ALL_BUCKETS}
    return {bucket: stall_cycles.get(bucket, 0) / instructions
            for bucket in ALL_BUCKETS}


def breakdown_delta(stall_cycles: Mapping[str, int], instructions: int,
                    baseline_cycles: Optional[Mapping[str, int]] = None,
                    baseline_instructions: int = 0) -> Dict[str, float]:
    """Per-bucket CPI delta versus a baseline run (positive = this run
    spends more cycles per instruction in the bucket)."""
    mine = cpi_breakdown(stall_cycles, instructions)
    if baseline_cycles is None:
        return mine
    theirs = cpi_breakdown(baseline_cycles, baseline_instructions)
    return {bucket: mine[bucket] - theirs[bucket] for bucket in ALL_BUCKETS}


__all__ = [
    "RETIRING", "FRONTEND_STARVED", "ROB_FULL", "IQ_FULL", "LQ_FULL",
    "SQ_FULL", "PORT_CONTENTION", "HEAD_WAIT_LOAD", "HEAD_WAIT_EXEC",
    "BRANCH_FLUSH", "VP_FLUSH", "MEM_FLUSH", "STALL_BUCKETS",
    "ALL_BUCKETS", "empty_buckets", "cpi_breakdown", "breakdown_delta",
]
