"""repro.telemetry — cycle accounting, stall attribution, event traces.

The measurement substrate of the laboratory.  Three parts:

* :mod:`repro.telemetry.stats` — the :class:`StatGroup` /
  :class:`Counter` / :class:`Histogram` hierarchy.  Every component
  (front end, timing engine, memory hierarchy, predictors) publishes
  into one named tree per simulation; trees merge across runs and
  round-trip through JSON, so they ride in :class:`SimResult` and the
  campaign cache.
* :mod:`repro.telemetry.stalls` — the top-down stall taxonomy the
  engine's per-cycle attribution charges non-retiring cycles to, and
  the CPI-breakdown arithmetic (`repro profile` renders it).
* :mod:`repro.telemetry.trace` / :mod:`repro.telemetry.export` — an
  opt-in bounded ring buffer of pipeline events
  (alloc/issue/complete/retire/flush) with ``chrome://tracing`` JSON
  and CSV exporters.

See ``docs/TELEMETRY.md`` for the counter tree, the stall taxonomy and
its exactness invariant (buckets sum to ``SimResult.cycles``), and the
trace formats.
"""

from repro.telemetry.stats import Counter, Histogram, StatGroup
from repro.telemetry.stalls import (
    ALL_BUCKETS,
    BRANCH_FLUSH,
    FRONTEND_STARVED,
    HEAD_WAIT_EXEC,
    HEAD_WAIT_LOAD,
    IQ_FULL,
    LQ_FULL,
    MEM_FLUSH,
    PORT_CONTENTION,
    RETIRING,
    ROB_FULL,
    SQ_FULL,
    STALL_BUCKETS,
    VP_FLUSH,
    cpi_breakdown,
    empty_buckets,
)
from repro.telemetry.trace import Event, EventTrace

__all__ = [
    "Counter",
    "Histogram",
    "StatGroup",
    "Event",
    "EventTrace",
    "RETIRING",
    "FRONTEND_STARVED",
    "ROB_FULL",
    "IQ_FULL",
    "LQ_FULL",
    "SQ_FULL",
    "PORT_CONTENTION",
    "HEAD_WAIT_LOAD",
    "HEAD_WAIT_EXEC",
    "BRANCH_FLUSH",
    "VP_FLUSH",
    "MEM_FLUSH",
    "STALL_BUCKETS",
    "ALL_BUCKETS",
    "empty_buckets",
    "cpi_breakdown",
]
