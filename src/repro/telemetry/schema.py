"""The declared shape of the per-run telemetry tree.

Every dotted stat path a simulation publishes (relative to the ``sim``
root group) must match a pattern in :data:`TELEMETRY_SCHEMA`, and
every concrete name in the schema must correspond to a real
publication site — the ``RL005`` reprolint rule (docs/LINTING.md)
checks the static half of that contract (string literals passed to
``StatGroup.counter`` / ``histogram`` / ``group``), and
``tests/test_reprolint.py`` checks the runtime half against an actual
simulation's tree.

Pattern language
----------------
Patterns are dotted paths whose segments are either concrete names or
wildcards: ``*`` matches exactly one segment (dynamic families such as
the stall-bucket counters), and a trailing ``**`` matches one or more
remaining segments (the predictor's free-form internal stats).

Versioning: structural changes to the tree bump
``repro.pipeline.results.TELEMETRY_SCHEMA_VERSION`` (part of the
campaign cache key); this module describes the *shape* at the current
version.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Dotted-path pattern → leaf/group kind (``counter`` / ``histogram``
#: / ``group``).  Paths are relative to the per-run ``sim`` root.
TELEMETRY_SCHEMA: Dict[str, str] = {
    # Trace delivery (repro.pipeline.engine._publish): how the
    # TraceSource streamed the ops — window count and peak residency.
    "source": "group",
    "source.ops": "counter",
    "source.chunks": "counter",
    "source.peak-window": "counter",
    # Timing-loop backend coverage (repro.pipeline.engine._publish):
    # which of the three loops ran, and how much of the run the vector
    # recurrence covered vs its scalar fallback (docs/VECTOR.md).
    "engine": "group",
    "engine.backend": "counter",
    "engine.vector-windows": "counter",
    "engine.vector-ops": "counter",
    "engine.fallback-windows": "counter",
    "engine.fallback-ops": "counter",
    "engine.delegated": "counter",
    # Engine cycle accounting (repro.pipeline.engine._publish).
    "pipeline": "group",
    "pipeline.cycles": "counter",
    "pipeline.instructions": "counter",
    "pipeline.stall-gaps": "histogram",
    "pipeline.stalls": "group",
    "pipeline.stalls.*": "counter",          # stall-taxonomy buckets
    "pipeline.warmup-stalls": "group",
    "pipeline.warmup-stalls.*": "counter",
    # Front end (repro.frontend.fetch.FrontEnd.publish_stats).
    "frontend": "group",
    "frontend.branch_accuracy": "counter",
    "frontend.control_ops": "counter",
    "frontend.mispredicts": "counter",
    "frontend.btb_misses": "counter",
    "frontend.icache_misses": "counter",
    "frontend.icache_hits": "counter",
    # Memory hierarchy (repro.memory.hierarchy.publish_stats).
    "memory": "group",
    "memory.levels": "group",
    "memory.levels.*": "counter",            # post-warmup per-level serves
    "memory.*.hits": "counter",              # one group per cache level
    "memory.*.misses": "counter",
    "memory.*.prefetch_fills": "counter",
    "memory.*.prefetch_hits": "counter",
    "memory.dram.accesses": "counter",
    "memory.dram.row_hits": "counter",
    "memory.dram.row_misses": "counter",
    "memory.dram.row_conflicts": "counter",
    # Hosted predictor (repro.pipeline.vp_interface.publish_stats).
    "predictor": "group",
    "predictor.storage_bits": "counter",
    "predictor.**": "counter",               # predictor-internal stats()
}

#: The campaign-service daemon's own telemetry tree (``repro serve``
#: publishes it under a ``service`` root; clients fetch it with the
#: ``stats`` op and ``repro jobs --stats``).  Kept separate from
#: :data:`TELEMETRY_SCHEMA` because these paths describe the daemon,
#: not a simulation run — the runtime sim-tree validation must not
#: expect them, but the RL005 vocabulary covers both (see
#: :func:`concrete_segments`).
SERVICE_SCHEMA: Dict[str, str] = {
    # Request accounting (repro.service.daemon).
    "service": "group",
    "service.requests": "counter",
    "service.submissions": "counter",
    "service.jobs": "group",
    "service.jobs.accepted": "counter",
    "service.jobs.deduped-inflight": "counter",
    "service.jobs.deduped-cached": "counter",
    "service.jobs.completed": "counter",
    "service.jobs.failed": "counter",
    "service.jobs.rejected": "counter",
    # Durability tier (repro.service.wal via repro.service.daemon):
    # write-ahead-log traffic and the stats of the last startup
    # recovery (docs/SERVICE.md §Durability).
    "service.wal": "group",
    "service.wal.appends": "counter",
    "service.wal.bytes": "counter",
    "service.wal.segments": "counter",
    "service.wal.compactions": "counter",
    "service.recovery": "group",
    "service.recovery.records": "counter",
    "service.recovery.submissions": "counter",
    "service.recovery.requeued": "counter",
    "service.recovery.torn": "counter",
    # Scheduler liveness (repro.service.daemon): heartbeat cadence and
    # time since the last scheduler/engine event — how `repro doctor`
    # and `repro jobs --stats` tell wedged from busy.
    "service.scheduler": "group",
    "service.scheduler.heartbeats": "counter",
    "service.scheduler.busy": "counter",
    "service.scheduler.activity-age": "counter",
    # Runtime lock sanitizer (repro.testing.synccheck, armed by
    # REPRO_SYNC_CHECKS=1): wrapped-lock/acquisition counts and the
    # violations caught — all zero in production where the sanitizer
    # is off.
    "service.sync": "group",
    "service.sync.enabled": "counter",
    "service.sync.locks": "counter",
    "service.sync.acquisitions": "counter",
    "service.sync.violations": "counter",
    # Shared cache tier (repro.experiments.campaign.ResultCache
    # counters rendered by the daemon and ``repro cache stats``).
    "cache": "group",
    "cache.hits": "counter",
    "cache.misses": "counter",
    "cache.stores": "counter",
    "cache.evictions": "counter",
    "cache.quarantined": "counter",
    "cache.entries": "counter",
    "cache.size-bytes": "counter",
}


def match(path: str, pattern: str) -> bool:
    """Whether dotted ``path`` matches dotted ``pattern``."""
    parts = path.split(".")
    want = pattern.split(".")
    for index, segment in enumerate(want):
        if segment == "**":
            return index == len(want) - 1 and len(parts) > index
        if index >= len(parts) or (segment != "*"
                                   and segment != parts[index]):
            return False
    return len(parts) == len(want)


def kind_of(path: str,
            schema: Optional[Dict[str, str]] = None) -> str:
    """The declared kind for ``path`` under ``schema`` (default
    :data:`TELEMETRY_SCHEMA`; most specific pattern wins), or
    ``"undeclared"`` when no pattern matches."""
    if schema is None:
        schema = TELEMETRY_SCHEMA
    best: Tuple[int, str] = (-1, "undeclared")
    for pattern, kind in schema.items():
        if match(path, pattern):
            concrete = sum(1 for seg in pattern.split(".")
                           if seg not in ("*", "**"))
            if concrete > best[0]:
                best = (concrete, kind)
    return best[1]


def concrete_segments() -> Tuple[str, ...]:
    """Every non-wildcard segment appearing in *any* schema (sim tree
    and service tree), sorted — the vocabulary the RL005 static check
    validates against."""
    names = {segment
             for schema in (TELEMETRY_SCHEMA, SERVICE_SCHEMA)
             for pattern in schema
             for segment in pattern.split(".")
             if segment not in ("*", "**")}
    return tuple(sorted(names))


def validate_paths(paths: Iterable[Tuple[str, str]],
                   schema: Optional[Dict[str, str]] = None) -> List[str]:
    """Check ``(dotted path, kind)`` pairs from a real telemetry tree
    against ``schema`` (default :data:`TELEMETRY_SCHEMA`); returns
    human-readable problem strings (empty when the tree conforms)."""
    if schema is None:
        schema = TELEMETRY_SCHEMA
    problems: List[str] = []
    seen: Set[str] = set()
    for path, kind in paths:
        seen.add(path)
        declared = kind_of(path, schema)
        if declared == "undeclared":
            problems.append(f"undeclared stat path: {path}")
        elif declared != kind:
            problems.append(f"{path}: published as {kind}, "
                            f"schema says {declared}")
    for pattern, kind in schema.items():
        if "*" in pattern or kind == "group":
            continue
        if pattern not in seen:
            problems.append(f"schema path never published: {pattern}")
    return problems


__all__ = [
    "SERVICE_SCHEMA",
    "TELEMETRY_SCHEMA",
    "concrete_segments",
    "kind_of",
    "match",
    "validate_paths",
]
