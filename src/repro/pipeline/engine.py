"""Cycle-level OOO timing engine.

A single-pass, program-order constraint solver: for every micro-op it
computes ``alloc``, ``ready``, ``issue``, ``complete`` and ``retire``
timestamps subject to the machine's width, window, port, and dataflow
constraints (see DESIGN.md §5 for the model statement).  Wrong-path
fetch is abstracted into redirect penalties, as in classic trace-driven
simulators.

The engine hosts exactly one :class:`~repro.pipeline.vp_interface.ValuePredictor`
and gives it the architectural hooks the paper's hardware has: a
front-end lookup at allocation, a training call at execution carrying
the retirement-stall criticality signal, and the LSQ forwarding tap.

Cycle accounting (docs/TELEMETRY.md): as each op's retirement is
scheduled, the gap back to the previous retirement is charged to the
top-down cause that bound it — the op's own execution (load vs
non-load), port/issue contention, a producer dependence, or whichever
allocation constraint (flush recovery, window/queue occupancy, fetch)
held it back.  The per-bucket totals partition the run's cycles
exactly, and every component publishes its statistics into one
:class:`~repro.telemetry.stats.StatGroup` tree on the result.

Three implementations of the per-op loop coexist (docs/PERF.md,
docs/VECTOR.md):

* the **vector** backend (:mod:`repro.pipeline.engine_vector`) — the
  default when numpy is importable.  It consumes structure-of-arrays
  windows, batches the program-order machines into per-window
  pre-passes, and falls back per window (store→load aliasing) or per
  run (predictor hooks, event collection) to the scalar loop.
* the **scalar** backend, :meth:`Engine._time_trace` — the optimized
  per-op hot path.  It precomputes op-class dispatch tables, inlines
  the bandwidth machines and the fetch-line check, keeps headline
  counters in locals, and skips engine→predictor calls that resolve
  to the no-op base-class implementations.
* the **reference** backend, :meth:`Engine._time_trace_reference` —
  the readable specification loop.

Selection: the ``backend=`` engine/CLI parameter wins, then the legacy
``REPRO_SLOW_PATH=1`` (→ ``reference``), then the registered
``REPRO_ENGINE_BACKEND`` environment variable, then the default
(``vector``, or ``scalar`` without numpy).

All three produce **bit-identical**
:class:`~repro.pipeline.results.SimResult` objects for any
(trace, config, predictor) — asserted across the workload catalogue by
``tests/test_perf_neutrality.py`` and policed statically by reprolint
RL003.
"""

from __future__ import annotations

import heapq
import importlib.util
import os
import warnings
from bisect import bisect_right
from typing import Optional, Sequence, Union

from repro.errors import (ConfigError, InvariantViolation,
                          NonTerminatingSimulation)
from repro.frontend.fetch import FrontEnd
from repro.isa import opcodes
from repro.isa.instruction import MicroOp
from repro.memory.disambiguation import StoreSets
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.results import SimResult
from repro.pipeline.vp_interface import (EngineContext, NoPredictor,
                                         ValuePredictor)
from repro.telemetry.stalls import (
    BRANCH_FLUSH,
    FRONTEND_STARVED,
    HEAD_WAIT_EXEC,
    HEAD_WAIT_LOAD,
    IQ_FULL,
    LQ_FULL,
    MEM_FLUSH,
    PORT_CONTENTION,
    RETIRING,
    ROB_FULL,
    SQ_FULL,
    VP_FLUSH,
    empty_buckets,
)
from repro.telemetry.stats import StatGroup
from repro.telemetry.trace import DEFAULT_CAPACITY, EventTrace
from repro.trace.source import PassStats, TraceSource, as_source

# Port-group aliasing: control ops share the branch ports, NOPs flow
# through the ALU ports.
_GROUP_OF = {
    opcodes.ALU: opcodes.ALU,
    opcodes.MUL: opcodes.MUL,
    opcodes.DIV: opcodes.DIV,
    opcodes.FP: opcodes.FP,
    opcodes.LOAD: opcodes.LOAD,
    opcodes.STORE: opcodes.STORE,
    opcodes.BRANCH: opcodes.BRANCH,
    opcodes.JUMP: opcodes.BRANCH,
    opcodes.IJUMP: opcodes.BRANCH,
    opcodes.NOP: opcodes.ALU,
}

_NUM_OP_CLASSES = max(_GROUP_OF) + 1

#: Op class → port-group key, as a tuple for O(1) C-level indexing on
#: the hot path (dict hashing avoided).
_GROUP_TAB = tuple(_GROUP_OF[op] for op in range(_NUM_OP_CLASSES))

#: Op class → is it a control-flow op (frozenset membership hoisted
#: into an indexed table for the hot path).
_IS_CONTROL_TAB = tuple(op in opcodes.CONTROL for op in range(_NUM_OP_CLASSES))

_ADDR_ALIGN = ~0x7  # store→load forwarding tracked at 8-byte granularity


#: Sentinel cycle limit when no ``max_cycles`` watchdog is armed: one
#: integer comparison per op against a bound no real simulation reaches,
#: so the guardrail is zero-cost when disabled.
_NO_CYCLE_LIMIT = 1 << 62


#: The three timing-loop implementations (docs/VECTOR.md), in the
#: order of their telemetry codes (``engine.backend``).
BACKENDS = ("reference", "scalar", "vector")

#: Whether the vector backend's numpy dependency is importable (probed
#: without importing, so scalar-only runs never pay the import).
_HAVE_NUMPY = importlib.util.find_spec("numpy") is not None


def _slow_path_requested() -> bool:
    """True when ``REPRO_SLOW_PATH`` selects the reference loop."""
    return os.environ.get("REPRO_SLOW_PATH", "") not in ("", "0")


def _backend_requested() -> Optional[str]:
    """The ``REPRO_ENGINE_BACKEND`` environment selection, or ``None``
    when unset/empty."""
    text = os.environ.get("REPRO_ENGINE_BACKEND", "")
    if not text:
        return None
    if text not in BACKENDS:
        raise ConfigError(
            f"REPRO_ENGINE_BACKEND must be one of {BACKENDS}, "
            f"got {text!r}")
    return text


def _invariants_requested() -> bool:
    """True when ``REPRO_CHECK_INVARIANTS`` arms the post-run audit."""
    return os.environ.get("REPRO_CHECK_INVARIANTS", "") not in ("", "0")


def _default_max_cycles() -> Optional[int]:
    """The ``REPRO_MAX_CYCLES`` environment default (None when unset)."""
    text = os.environ.get("REPRO_MAX_CYCLES", "")
    if not text or text == "0":
        return None
    limit = int(text)
    if limit < 0:
        raise ValueError(f"REPRO_MAX_CYCLES must be >= 0, got {limit}")
    return limit


class _WidthMachine:
    """In-order bandwidth limiter: at most ``width`` events per cycle,
    event times never decrease."""

    __slots__ = ("width", "cycle", "count")

    def __init__(self, width: int) -> None:
        self.width = width
        self.cycle = -1
        self.count = 0

    def schedule(self, earliest: int) -> int:
        """Earliest cycle >= ``earliest`` with a free slot; claims it."""
        t = earliest if earliest > self.cycle else self.cycle
        if t == self.cycle:
            if self.count >= self.width:
                t += 1
                self.count = 1
            else:
                self.count += 1
        else:
            self.count = 1
        self.cycle = t
        return t


class Engine:
    """Times one trace on one core configuration with one predictor.

    Parameters
    ----------
    config:
        The :class:`~repro.pipeline.config.CoreConfig` to model.
    predictor:
        The hosted :class:`~repro.pipeline.vp_interface.ValuePredictor`
        (``None`` → the no-prediction baseline).
    collect_timing:
        Retain per-op alloc/ready/issue/complete/retire arrays on the
        result (``SimResult.timing``).
    collect_events:
        Record the bounded pipeline event trace (``SimResult.events``).
    event_capacity:
        Ring capacity for the event trace (newest events win).
    collect_stalls:
        Run the per-gap stall-attribution pass (default).  Disabling it
        leaves ``SimResult.stall_cycles`` zeroed and the stall-gap
        histogram empty but does not change any timing outcome; the
        ``repro bench`` harness uses this to measure the engine's pure
        simulation throughput.
    max_cycles:
        Watchdog budget for the whole run, in simulated cycles
        (including warmup).  A run that exceeds it aborts with
        :class:`~repro.errors.NonTerminatingSimulation` carrying a
        diagnostic snapshot of where the simulation was stuck.
        ``None`` (the default) reads the ``REPRO_MAX_CYCLES``
        environment variable; unset/0 disarms the watchdog, which then
        costs one integer comparison per op against an unreachable
        sentinel.  See docs/ROBUSTNESS.md.
    backend:
        Which timing-loop implementation runs (docs/VECTOR.md):
        ``"vector"``, ``"scalar"`` or ``"reference"``.  ``None`` (the
        default) defers to ``REPRO_SLOW_PATH``, then
        ``REPRO_ENGINE_BACKEND``, then ``vector`` when numpy is
        importable (``scalar`` otherwise).  All backends are
        bit-identical; an explicit ``"vector"`` without numpy raises
        :class:`~repro.errors.ConfigError` at run time.
    """

    def __init__(self, config: CoreConfig,
                 predictor: Optional[ValuePredictor] = None,
                 collect_timing: bool = False,
                 collect_events: bool = False,
                 event_capacity: int = DEFAULT_CAPACITY,
                 collect_stalls: bool = True,
                 max_cycles: Optional[int] = None,
                 backend: Optional[str] = None) -> None:
        if max_cycles is None:
            max_cycles = _default_max_cycles()
        elif max_cycles <= 0:
            raise ConfigError(
                f"max_cycles must be positive, got {max_cycles}")
        if backend is not None and backend not in BACKENDS:
            raise ConfigError(
                f"backend must be one of {BACKENDS}, got {backend!r}")
        self.backend = backend
        self.max_cycles = max_cycles
        self.config = config
        self.predictor = predictor or NoPredictor()
        self.collect_timing = collect_timing
        self.collect_events = collect_events
        self.collect_stalls = collect_stalls
        self.event_capacity = event_capacity
        self.frontend = FrontEnd(config.frontend)
        self.memory = MemoryHierarchy(config.memory)
        self.store_sets = StoreSets()

        # Execution resources.
        self._port_heaps = {}
        for op, group in config.ports.items():
            key = _GROUP_OF[op]
            if key == op:
                self._port_heaps[key] = [0] * group.count
        self._issue_bw = [0] * config.issue_width

        # Per-op-class dispatch tables (precomputed once per config so
        # the hot loop replaces two dict lookups and two attribute
        # chains per op with tuple indexing).
        ports = config.ports
        self._push_tab = tuple(
            (1 if ports[op].pipelined else ports[op].latency)
            if op in ports else None
            for op in range(_NUM_OP_CLASSES))
        self._lat_tab = tuple(
            ports[op].latency if op in ports else None
            for op in range(_NUM_OP_CLASSES))

        # Context shared with the predictor.
        self._ctx = EngineContext()
        self._ctx.store_inflight_by_pc = self._store_inflight_by_pc
        self._ctx.store_inflight_to_addr = self._store_inflight_to_addr
        self._ctx.probe_level = self.memory.probe_level

        # Per-run state initialised in run().
        self._reg_ready = None
        self._writer_pc = None
        self._writer_seq = None
        self._retire_times = None
        self._store_by_addr = None
        self._store_by_pc = None
        self._store_records = None
        self._now_alloc = 0

        # Vector-backend coverage counters, published as the
        # ``engine.*`` telemetry group (zero on the scalar backends).
        self._vec_windows = 0
        self._vec_ops = 0
        self._vec_fallback_windows = 0
        self._vec_fallback_ops = 0
        self._vec_delegated = False

    # ------------------------------------------------------------------
    # Store-tracking callables exposed through the context.
    # ------------------------------------------------------------------
    def _store_inflight_by_pc(self, store_pc: int):
        """(seq, value, complete) of the newest in-flight store from
        ``store_pc``, else None."""
        seq = self._store_by_pc.get(store_pc)
        if seq is None:
            return None
        pc, addr8, complete, retire, value = self._store_records[seq]
        if retire < self._now_alloc:
            return None
        return seq, value, complete

    def _store_inflight_to_addr(self, addr: int):
        """(seq, pc, value, complete) of the newest in-flight store to
        ``addr`` (8-byte aligned), else None."""
        entry = self._store_by_addr.get(addr & _ADDR_ALIGN)
        if entry is None:
            return None
        seq, pc, complete, retire, value = entry
        if retire < self._now_alloc:
            return None
        return seq, pc, value, complete

    # ------------------------------------------------------------------
    def run(self, trace: Union[TraceSource, Sequence[MicroOp]],
            workload: str = "trace", warmup: int = 0) -> SimResult:
        """Time ``trace`` and return its :class:`SimResult`.

        Parameters
        ----------
        trace:
            A :class:`~repro.trace.source.TraceSource` (streaming,
            bounded-window delivery — see docs/TRACES.md) or a plain
            program-order sequence of
            :class:`~repro.isa.instruction.MicroOp` records (e.g. from
            :func:`repro.trace.build_trace`), which is wrapped in the
            zero-copy list adapter.  Both paths produce bit-identical
            results.
        workload:
            Label recorded on the result.
        warmup:
            Number of leading micro-ops excluded from statistics.
            Predictors and caches train throughout — warmup measures
            the steady state the paper's long simulations report.

        Returns
        -------
        SimResult
            Cycles, IPC, prediction/branch/memory counters, the exact
            stall-cycle partition, and the per-component telemetry
            tree.  Deterministic: the same inputs always produce a
            bit-identical result, whichever backend runs
            (docs/VECTOR.md documents the three-loop identity
            contract).
        """
        source = as_source(trace)
        result = SimResult(workload, self.config.name, self.predictor.name)
        n = len(source)
        if warmup < 0 or warmup >= n and n > 0:
            raise ValueError(f"warmup {warmup} must be in [0, {n})")
        result.instructions = n - warmup
        telemetry = StatGroup("sim")
        stream = source.last_pass
        audit = _invariants_requested()
        forced_timing = audit and not self.collect_timing
        if forced_timing:
            self.collect_timing = True
        self._vec_windows = 0
        self._vec_ops = 0
        self._vec_fallback_windows = 0
        self._vec_fallback_ops = 0
        self._vec_delegated = False
        try:
            if n:
                pipeline_group = telemetry.group(
                    "pipeline", "cycle accounting and stall attribution")
                gap_hist = pipeline_group.histogram(
                    "stall-gaps", "non-retiring gap lengths (post-warmup)")
                if (backend := self._resolve_backend()) == "reference":
                    self._time_trace_reference(source, warmup, result,
                                               gap_hist)
                elif backend == "scalar":
                    self._time_trace(source, warmup, result, gap_hist)
                else:
                    self._time_trace_vector(source, warmup, result,
                                            gap_hist)
                # Capture delivery stats before the audit's second pass
                # overwrites them.
                stream = source.last_pass
                if audit:
                    self._check_invariants(source, warmup, result)
        finally:
            if forced_timing:
                self.collect_timing = False
                result.timing = None
        result.telemetry = self._publish(result, telemetry, stream)
        return result

    # ------------------------------------------------------------------
    def _resolve_backend(self) -> str:
        """Which timing loop this run uses (docs/VECTOR.md).

        Precedence: the explicit ``backend=`` constructor argument,
        then the legacy ``REPRO_SLOW_PATH=1`` reference-loop switch,
        then the registered ``REPRO_ENGINE_BACKEND`` environment
        variable, then the default — ``vector`` when numpy is
        importable, ``scalar`` otherwise.  An explicit ``vector``
        request without numpy is a :class:`ConfigError` rather than a
        silent downgrade."""
        backend = self.backend
        if backend is None:
            if _slow_path_requested():
                return "reference"
            backend = _backend_requested()
        if backend is None:
            return "vector" if _HAVE_NUMPY else "scalar"
        if backend == "vector" and not _HAVE_NUMPY:
            raise ConfigError(
                "the vector engine backend requires numpy, which is not "
                "importable here; select backend='scalar' instead")
        return backend

    def _time_trace_vector(self, trace: TraceSource, warmup: int,
                           result: SimResult, gap_hist) -> None:
        """Vectorized structure-of-arrays loop (the ``vector``
        backend).  Thin delegator: the implementation lives in
        :mod:`repro.pipeline.engine_vector`, imported lazily so the
        scalar backends never pay the numpy import."""
        from repro.pipeline import engine_vector
        engine_vector.time_trace_vector(self, trace, warmup, result,
                                        gap_hist)

    # ------------------------------------------------------------------
    def _time_trace(self, trace: TraceSource, warmup: int,
                    result: SimResult, gap_hist) -> None:
        """Optimized per-op loop (the default hot path).

        Semantically identical to :meth:`_time_trace_reference`; the
        differences are mechanical: op-class dispatch tables instead of
        dict lookups, the alloc/retire bandwidth machines inlined as
        local integers, the fetch-line check inlined, headline counters
        accumulated in locals and written back once, branch-history
        context recomputed only after control ops, and calls into the
        predictor skipped when they would hit the no-op base-class
        implementation.
        """
        cfg = self.config
        predictor = self.predictor
        frontend = self.frontend
        memory = self.memory
        ctx = self._ctx
        n = len(trace)

        # Engine→predictor calls that resolve to the ValuePredictor
        # base class are guaranteed no-ops: skip them (and, when no
        # hook needs it, the whole EngineContext bookkeeping).
        pcls = type(predictor)
        predict = predictor.predict \
            if pcls.predict is not ValuePredictor.predict else None
        train = predictor.train_execute \
            if pcls.train_execute is not ValuePredictor.train_execute else None
        tick = predictor.epoch_tick \
            if pcls.epoch_tick is not ValuePredictor.epoch_tick else None
        on_fwd = predictor.on_forwarding \
            if pcls.on_forwarding is not ValuePredictor.on_forwarding else None
        need_ctx = (predict is not None or train is not None
                    or on_fwd is not None)
        # The per-op ROB-head bisect and L1-hit fields are only read by
        # criticality-driven predictors (ValuePredictor.needs_criticality).
        need_crit = train is not None and getattr(
            predictor, "needs_criticality", True)

        cycle_base = 0
        level_base = {}

        reg_ready = [0] * 16
        reg_writer_load = [False] * 16
        writer_pc = [0] * 16
        writer_seq = [-1] * 16
        self._reg_ready = reg_ready
        ctx.writer_pc = writer_pc
        ctx.writer_seq = writer_seq

        retire_times: list = []
        self._retire_times = retire_times
        load_retires: list = []
        store_retires: list = []
        iq_heap: list = []

        self._store_by_addr = {}
        self._store_by_pc = {}
        self._store_records = {}
        store_by_addr = self._store_by_addr
        store_by_pc = self._store_by_pc
        store_records = self._store_records

        # Inlined bandwidth machines (see _WidthMachine.schedule).
        alloc_width = cfg.fetch_width
        alloc_cycle = -1
        alloc_count = 0
        retire_bw = cfg.retire_width
        retire_cycle = -1
        retire_count = 0
        cycle_limit = self.max_cycles if self.max_cycles is not None \
            else _NO_CYCLE_LIMIT

        port_heaps = {key: list(h) for key, h in self._port_heaps.items()}
        for heap in port_heaps.values():
            heapq.heapify(heap)
        heap_tab = [port_heaps.get(group) for group in
                    range(max(port_heaps, default=0) + 1)]
        issue_bw = list(self._issue_bw)
        heapq.heapify(issue_bw)

        redirect_t = 0
        redirect_cause = FRONTEND_STARVED  # placeholder until a flush
        prev_retire = 0
        num_loads = 0
        num_stores = 0

        # Cycle accounting (post-warmup and warmup partitions).
        collect_stalls = self.collect_stalls
        main_buckets = result.stall_cycles
        warmup_buckets = result.warmup_stall_cycles
        main_retiring = 0
        warm_retiring = 0
        observe_gap = gap_hist.observe

        events = EventTrace(self.event_capacity) \
            if self.collect_events else None
        record_event = events.record if events is not None else None

        timing = None
        if self.collect_timing:
            timing = {k: [0] * n for k in
                      ("alloc", "ready", "issue", "complete", "retire")}
            timing["mispredict"] = [False] * n
            result.timing = timing

        # Headline counters kept in locals, written back after the loop.
        c_loads = 0
        c_stores = 0
        c_branches = 0
        c_branch_miss = 0
        c_mem_viol = 0
        c_pred_loads = 0
        c_pred_nonloads = 0
        c_mr_pred = 0
        c_reg_pred = 0
        c_correct = 0
        c_wrong = 0
        c_vp_flush = 0
        by_source = result.by_source

        rob_size = cfg.rob_size
        iq_size = cfg.iq_size
        lq_size = cfg.lq_size
        sq_size = cfg.sq_size
        fwd_latency = cfg.forward_latency
        vp_penalty = cfg.vp_penalty
        mem_violation_penalty = cfg.mem_violation_penalty
        mispredict_penalty = frontend.mispredict_penalty
        retire_width = cfg.retire_width
        store_prune_limit = 4 * sq_size

        # Bound methods/constants hoisted out of the loop.
        group_tab = _GROUP_TAB
        is_control_tab = _IS_CONTROL_TAB
        push_tab = self._push_tab
        lat_tab = self._lat_tab
        heappush = heapq.heappush
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        bisect = bisect_right
        memory_access = memory.access
        process_control = frontend.process_control
        fetch_bubbles = frontend.fetch_bubbles
        load_dependence = self.store_sets.load_dependence
        record_violation = self.store_sets.record_violation
        store_dispatched = self.store_sets.store_dispatched
        prune_stores = self._prune_stores
        abort_nonterminating = self._abort_nonterminating
        history = frontend.history
        icache_line = frontend.config.icache_line
        last_fetch_line = frontend._last_fetch_line
        LOAD_OP = opcodes.LOAD
        STORE_OP = opcodes.STORE
        ADDR_ALIGN = _ADDR_ALIGN
        MASK32 = (1 << 32) - 1
        MASK128 = (1 << 128) - 1

        if need_ctx:
            bits = history.bits
            ctx.history32 = bits & MASK32
            ctx.history = bits & MASK128

        idx = -1
        for _window in trace.chunks():
            for uop in _window:
                idx += 1
                op = uop.op
                pc = uop.pc
                is_load = op == LOAD_OP
                is_store = op == STORE_OP
                collecting = idx >= warmup
                if idx == warmup:
                    cycle_base = prev_retire
                    # Snapshot runs once per simulation, at the warmup edge.
                    level_base = dict(memory.level_counts)  # reprolint: disable=RL002

                # ---------------- front end / allocate ----------------
                earliest = redirect_t
                alloc_cause = redirect_cause
                line = pc // icache_line
                if line != last_fetch_line:
                    last_fetch_line = line
                    bubbles = fetch_bubbles(pc)
                    if bubbles:
                        base = earliest if earliest > alloc_cycle \
                            else alloc_cycle
                        earliest = base + bubbles
                        alloc_cause = FRONTEND_STARVED
                if idx >= rob_size:
                    t = retire_times[idx - rob_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = ROB_FULL
                if len(iq_heap) >= iq_size and iq_heap[0] > earliest:
                    earliest = iq_heap[0]
                    alloc_cause = IQ_FULL
                if is_load and num_loads >= lq_size:
                    t = load_retires[num_loads - lq_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = LQ_FULL
                if is_store and num_stores >= sq_size:
                    t = store_retires[num_stores - sq_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = SQ_FULL
                # Inlined alloc-width machine.
                if earliest > alloc_cycle:
                    alloc_cycle = earliest
                    alloc_count = 1
                elif alloc_count >= alloc_width:
                    alloc_cycle += 1
                    alloc_count = 1
                else:
                    alloc_count += 1
                alloc_t = alloc_cycle

                # ---------------- context + front-end VP lookup ----------------
                fwd = None
                if is_load:
                    num_loads += 1
                    if collecting:
                        c_loads += 1
                    entry = store_by_addr.get(uop.addr & ADDR_ALIGN)
                    if entry is not None and entry[3] >= alloc_t:
                        fwd = entry  # (seq, pc, complete, retire, value)

                if need_ctx:
                    self._now_alloc = alloc_t
                    ctx.seq = idx
                    ctx.forwarding_store = (
                        None if fwd is None else (fwd[0], fwd[1], fwd[4]))

                prediction = predict(uop, ctx) if predict is not None else None

                # ---------------- dataflow readiness ----------------
                ready = alloc_t + 1
                dep_load = False
                for src in uop.srcs:
                    t = reg_ready[src]
                    if t > ready:
                        ready = t
                        dep_load = reg_writer_load[src]

                violation = False
                if fwd is not None:
                    store_complete = fwd[2]
                    dep = load_dependence(pc)
                    if dep is not None:
                        if store_complete > ready:
                            ready = store_complete
                            dep_load = False
                    elif store_complete > ready:
                        violation = True

                # ---------------- issue ----------------
                heap = heap_tab[group_tab[op]]
                port_free = heappop(heap)
                bw_free = heappop(issue_bw)
                issue_t = ready
                if port_free > issue_t:
                    issue_t = port_free
                if bw_free > issue_t:
                    issue_t = bw_free
                heappush(heap, issue_t + push_tab[op])
                heappush(issue_bw, issue_t + 1)

                # ---------------- execute / complete ----------------
                level = "L1"
                if is_load:
                    if fwd is not None and not violation:
                        store_complete = fwd[2]
                        base = issue_t if issue_t > store_complete \
                            else store_complete
                        complete_t = base + fwd_latency
                        if on_fwd is not None:
                            on_fwd(fwd[1], pc, fwd[0])
                    else:
                        latency, level = memory_access(pc, uop.addr, issue_t)
                        complete_t = issue_t + latency
                        if violation:
                            if collecting:
                                c_mem_viol += 1
                            record_violation(pc, fwd[1])
                            t = complete_t + mem_violation_penalty
                            if t > redirect_t:
                                redirect_t = t
                                redirect_cause = MEM_FLUSH
                                if record_event is not None:
                                    record_event(complete_t, "flush", idx,
                                                 pc, op, MEM_FLUSH)
                elif is_store:
                    complete_t = issue_t + 1
                    memory_access(pc, uop.addr, complete_t, is_store=True)
                else:
                    complete_t = issue_t + lat_tab[op]

                # ---------------- retire (inlined width machine) ----------
                earliest_r = complete_t + 1
                if prev_retire > earliest_r:
                    earliest_r = prev_retire
                if earliest_r > retire_cycle:
                    retire_cycle = earliest_r
                    retire_count = 1
                elif retire_count >= retire_bw:
                    retire_cycle += 1
                    retire_count = 1
                else:
                    retire_count += 1
                retire_t = retire_cycle
                if retire_t > cycle_limit:
                    abort_nonterminating(idx, n, pc, retire_t)

                # ---------------- cycle accounting ----------------
                gap = retire_t - prev_retire
                if gap > 0 and collect_stalls:
                    if collecting:
                        main_retiring += 1
                        buckets = main_buckets
                    else:
                        warm_retiring += 1
                        buckets = warmup_buckets
                    if gap > 1:
                        hi = retire_t - 1
                        pos = prev_retire
                        while True:
                            if earliest > pos:
                                top = earliest if earliest < hi else hi
                                buckets[alloc_cause] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            if alloc_t > pos:
                                top = alloc_t if alloc_t < hi else hi
                                buckets[FRONTEND_STARVED] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            if ready > pos:
                                top = ready if ready < hi else hi
                                buckets[HEAD_WAIT_LOAD if dep_load
                                        else HEAD_WAIT_EXEC] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            if issue_t > pos:
                                top = issue_t if issue_t < hi else hi
                                buckets[PORT_CONTENTION] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            buckets[HEAD_WAIT_LOAD if is_load
                                    else HEAD_WAIT_EXEC] += hi - pos
                            break
                        if collecting:
                            observe_gap(gap - 1)
                prev_retire = retire_t

                # ---------------- criticality signal ----------------
                if need_crit:
                    head = bisect(retire_times, complete_t, 0, idx)
                    rob_distance = idx - head
                    ctx.rob_distance = rob_distance
                    ctx.stalls_retirement = (rob_distance < retire_width
                                             and retire_t == complete_t + 1)
                    ctx.l1_hit = level == "L1"
                    ctx.hit_level = level

                # ---------------- control flow ----------------
                branch_misp = False
                if is_control_tab[op]:
                    if collecting:
                        c_branches += 1
                    correct_cf = process_control(pc, op, uop.taken, uop.target)
                    if need_ctx:
                        bits = history.bits
                        ctx.history32 = bits & MASK32
                        ctx.history = bits & MASK128
                    if not correct_cf:
                        if collecting:
                            c_branch_miss += 1
                        branch_misp = True
                        t = complete_t + mispredict_penalty
                        if t > redirect_t:
                            redirect_t = t
                            redirect_cause = BRANCH_FLUSH
                            if record_event is not None:
                                record_event(complete_t, "flush", idx,
                                             pc, op, BRANCH_FLUSH)
                if need_ctx:
                    ctx.branch_mispredicted = branch_misp

                # ---------------- value-prediction outcome ----------------
                vp_correct = True
                if prediction is not None:
                    vp_correct = prediction.value == uop.value
                    if collecting:
                        if is_load:
                            c_pred_loads += 1
                        else:
                            c_pred_nonloads += 1
                        if prediction.store_seq is not None:
                            c_mr_pred += 1
                        else:
                            c_reg_pred += 1
                        attribution = by_source.get(prediction.source)
                        if attribution is None:
                            # First sighting of a source: one list per
                            # source per run (setdefault would build and
                            # discard the default on every predicted op).
                            attribution = [0, 0]  # reprolint: disable=RL002
                            by_source[prediction.source] = attribution
                        attribution[0] += 1
                        if vp_correct:
                            attribution[1] += 1
                            c_correct += 1
                        else:
                            c_wrong += 1
                            c_vp_flush += 1
                    if not vp_correct:
                        t = complete_t + vp_penalty
                        if t > redirect_t:
                            redirect_t = t
                            redirect_cause = VP_FLUSH
                            if record_event is not None:
                                record_event(complete_t, "flush", idx,
                                             pc, op, VP_FLUSH)

                # ---------------- architectural updates ----------------
                dest = uop.dest
                if dest is not None:
                    if prediction is not None and vp_correct:
                        avail = alloc_t + 1
                        if prediction.store_seq is not None:
                            rec = store_records.get(prediction.store_seq)
                            if rec is not None and rec[2] > avail:
                                avail = rec[2]
                        reg_ready[dest] = avail
                        reg_writer_load[dest] = False
                    else:
                        reg_ready[dest] = complete_t
                        reg_writer_load[dest] = is_load
                    if need_ctx:
                        writer_pc[dest] = pc
                        writer_seq[dest] = idx

                if is_store:
                    num_stores += 1
                    if collecting:
                        c_stores += 1
                    store_dispatched(pc, idx)
                    addr8 = uop.addr & ADDR_ALIGN
                    value = uop.value
                    store_by_addr[addr8] = (idx, pc, complete_t, retire_t, value)
                    store_by_pc[pc] = idx
                    store_records[idx] = (pc, addr8, complete_t, retire_t, value)
                    store_retires.append(retire_t)
                    if len(store_records) > store_prune_limit:
                        prune_stores(retire_t)
                if is_load:
                    load_retires.append(retire_t)

                retire_times.append(retire_t)
                if len(iq_heap) < iq_size:
                    heappush(iq_heap, issue_t)
                elif issue_t > iq_heap[0]:
                    heapreplace(iq_heap, issue_t)

                # ---------------- training ----------------
                if train is not None:
                    train(uop, ctx, prediction, vp_correct)
                if tick is not None:
                    tick(idx + 1)

                if timing is not None:
                    timing["alloc"][idx] = alloc_t
                    timing["ready"][idx] = ready
                    timing["issue"][idx] = issue_t
                    timing["complete"][idx] = complete_t
                    timing["retire"][idx] = retire_t
                    timing["mispredict"][idx] = branch_misp

                if record_event is not None:
                    record_event(alloc_t, "alloc", idx, pc, op)
                    record_event(issue_t, "issue", idx, pc, op)
                    record_event(complete_t, "complete", idx, pc, op)
                    record_event(retire_t, "retire", idx, pc, op)

        # Write the local accumulators back to the result.
        main_buckets[RETIRING] += main_retiring
        warmup_buckets[RETIRING] += warm_retiring
        result.loads = c_loads
        result.stores = c_stores
        result.branches = c_branches
        result.branch_mispredicts = c_branch_miss
        result.mem_violations = c_mem_viol
        result.predicted_loads = c_pred_loads
        result.predicted_nonloads = c_pred_nonloads
        result.mr_predictions = c_mr_pred
        result.register_predictions = c_reg_pred
        result.correct_predictions = c_correct
        result.wrong_predictions = c_wrong
        result.vp_flushes = c_vp_flush

        result.cycles = prev_retire - cycle_base
        result.level_counts = {
            level: count - level_base.get(level, 0)
            for level, count in memory.level_counts.items()}
        result.events = events

    # ------------------------------------------------------------------
    def _time_trace_reference(self, trace: TraceSource, warmup: int,
                              result: SimResult, gap_hist) -> None:
        """Readable reference implementation of the per-op loop.

        Selected by ``REPRO_SLOW_PATH=1``.  This is the behavioural
        specification :meth:`_time_trace` is validated against; keep
        the two in lockstep when changing the timing model.
        """
        cfg = self.config
        predictor = self.predictor
        frontend = self.frontend
        memory = self.memory
        ctx = self._ctx
        n = len(trace)
        collect_stalls = self.collect_stalls

        cycle_base = 0
        level_base = {}

        reg_ready = [0] * 16
        # Whether the last writer of each register was a load whose
        # value arrives from the memory system (value-predicted and
        # renamed producers count as non-load: their consumers are not
        # waiting on memory).
        reg_writer_load = [False] * 16
        writer_pc = [0] * 16
        writer_seq = [-1] * 16
        self._reg_ready = reg_ready
        ctx.writer_pc = writer_pc
        ctx.writer_seq = writer_seq

        retire_times: list = []
        self._retire_times = retire_times
        load_retires: list = []
        store_retires: list = []
        # IQ occupancy: entries free at *issue*, which is out of order.
        # Exact model (given in-order alloc): alloc(i) must be >= the
        # iq_size-th largest issue time seen so far — maintained as a
        # bounded min-heap of the largest issue times.
        iq_heap: list = []

        self._store_by_addr = {}
        self._store_by_pc = {}
        self._store_records = {}
        store_by_addr = self._store_by_addr
        store_by_pc = self._store_by_pc
        store_records = self._store_records

        alloc_machine = _WidthMachine(cfg.fetch_width)
        retire_machine = _WidthMachine(cfg.retire_width)
        cycle_limit = self.max_cycles if self.max_cycles is not None \
            else _NO_CYCLE_LIMIT

        port_heaps = {key: list(h) for key, h in self._port_heaps.items()}
        for heap in port_heaps.values():
            heapq.heapify(heap)
        issue_bw = list(self._issue_bw)
        heapq.heapify(issue_bw)

        redirect_t = 0
        redirect_cause = FRONTEND_STARVED  # placeholder until a flush
        prev_retire = 0
        num_loads = 0
        num_stores = 0

        # Cycle accounting: post-warmup and warmup buckets (kept
        # separate so default_warmup runs don't pollute the reported
        # breakdown), plus a histogram of retirement-gap lengths.
        main_buckets = result.stall_cycles
        warmup_buckets = result.warmup_stall_cycles

        events = EventTrace(self.event_capacity) \
            if self.collect_events else None

        timing = None
        if self.collect_timing:
            timing = {k: [0] * n for k in
                      ("alloc", "ready", "issue", "complete", "retire")}
            timing["mispredict"] = [False] * n
            result.timing = timing

        rob_size = cfg.rob_size
        iq_size = cfg.iq_size
        lq_size = cfg.lq_size
        sq_size = cfg.sq_size
        fwd_latency = cfg.forward_latency

        idx = -1
        for _window in trace.chunks():
            for uop in _window:
                idx += 1
                op = uop.op
                is_load = op == opcodes.LOAD
                is_store = op == opcodes.STORE
                is_control = op in opcodes.CONTROL
                collecting = idx >= warmup
                if idx == warmup:
                    cycle_base = prev_retire
                    level_base = dict(memory.level_counts)

                # ---------------- front end / allocate ----------------
                # Track which constraint binds allocation (`alloc_cause`);
                # ties keep the earlier, higher-priority cause.
                earliest = redirect_t
                alloc_cause = redirect_cause
                bubbles = frontend.fetch_bubbles(uop.pc)
                if bubbles:
                    base = earliest if earliest > alloc_machine.cycle \
                        else alloc_machine.cycle
                    earliest = base + bubbles
                    alloc_cause = FRONTEND_STARVED
                if idx >= rob_size:
                    t = retire_times[idx - rob_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = ROB_FULL
                if len(iq_heap) >= iq_size and iq_heap[0] > earliest:
                    earliest = iq_heap[0]
                    alloc_cause = IQ_FULL
                if is_load and num_loads >= lq_size:
                    t = load_retires[num_loads - lq_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = LQ_FULL
                if is_store and num_stores >= sq_size:
                    t = store_retires[num_stores - sq_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = SQ_FULL
                alloc_t = alloc_machine.schedule(earliest)
                self._now_alloc = alloc_t

                # ---------------- context + front-end VP lookup ----------------
                ctx.seq = idx
                ctx.history32 = frontend.history.recent(32)
                ctx.history = frontend.history.recent(128)
                fwd = None
                if is_load:
                    num_loads += 1
                    if collecting:
                        result.loads += 1
                    entry = store_by_addr.get(uop.addr & _ADDR_ALIGN)
                    if entry is not None and entry[3] >= alloc_t:
                        fwd = entry  # (seq, pc, complete, retire, value)
                ctx.forwarding_store = (
                    None if fwd is None else (fwd[0], fwd[1], fwd[4]))

                prediction = predictor.predict(uop, ctx)

                # ---------------- dataflow readiness ----------------
                ready = alloc_t + 1
                dep_load = False
                for src in uop.srcs:
                    t = reg_ready[src]
                    if t > ready:
                        ready = t
                        dep_load = reg_writer_load[src]

                # Memory disambiguation for loads with an in-flight producer
                # store: a store-sets hit serialises the load behind the
                # store; otherwise the load speculates and pays a violation
                # flush when the store's data was not yet available.
                violation = False
                if fwd is not None:
                    store_complete = fwd[2]
                    dep = self.store_sets.load_dependence(uop.pc)
                    if dep is not None:
                        if store_complete > ready:
                            ready = store_complete
                            dep_load = False
                    elif store_complete > ready:
                        violation = True

                # ---------------- issue ----------------
                group = _GROUP_OF[op]
                heap = port_heaps[group]
                port_free = heapq.heappop(heap)
                bw_free = heapq.heappop(issue_bw)
                issue_t = ready
                if port_free > issue_t:
                    issue_t = port_free
                if bw_free > issue_t:
                    issue_t = bw_free
                pg = cfg.ports[op]
                heapq.heappush(heap, issue_t + (1 if pg.pipelined else pg.latency))
                heapq.heappush(issue_bw, issue_t + 1)

                # ---------------- execute / complete ----------------
                level = "L1"
                if is_load:
                    if fwd is not None and not violation:
                        store_complete = fwd[2]
                        base = issue_t if issue_t > store_complete else store_complete
                        complete_t = base + fwd_latency
                        predictor.on_forwarding(fwd[1], uop.pc, fwd[0])
                    else:
                        latency, level = memory.access(uop.pc, uop.addr, issue_t)
                        complete_t = issue_t + latency
                        if violation:
                            # Ordering violation: squash + refetch from the load.
                            if collecting:
                                result.mem_violations += 1
                            self.store_sets.record_violation(uop.pc, fwd[1])
                            t = complete_t + cfg.mem_violation_penalty
                            if t > redirect_t:
                                redirect_t = t
                                redirect_cause = MEM_FLUSH
                                if events is not None:
                                    events.record(complete_t, "flush", idx,
                                                  uop.pc, op, MEM_FLUSH)
                elif is_store:
                    complete_t = issue_t + 1
                    memory.access(uop.pc, uop.addr, complete_t, is_store=True)
                else:
                    complete_t = issue_t + cfg.ports[op].latency

                # ---------------- retire ----------------
                retire_t = retire_machine.schedule(
                    max(complete_t + 1, prev_retire))
                if retire_t > cycle_limit:
                    self._abort_nonterminating(idx, n, uop.pc, retire_t)

                # ---------------- cycle accounting ----------------
                # Gap cycles back to the previous retirement are exactly
                # the cycles in which nothing retired; charge them to the
                # constraint chain that bound this op (retirement times are
                # monotone, so the partition is exact by construction).
                gap = retire_t - prev_retire
                if gap > 0 and collect_stalls:
                    buckets = main_buckets if collecting else warmup_buckets
                    buckets[RETIRING] += 1
                    if gap > 1:
                        # gap > 1 implies retire_t == complete_t + 1: the
                        # op's own completion was the binding constraint.
                        hi = retire_t - 1
                        pos = prev_retire
                        for bound, bucket in (
                                (earliest, alloc_cause),
                                (alloc_t, FRONTEND_STARVED),
                                (ready, HEAD_WAIT_LOAD if dep_load
                                 else HEAD_WAIT_EXEC),
                                (issue_t, PORT_CONTENTION),
                                (hi, HEAD_WAIT_LOAD if is_load
                                 else HEAD_WAIT_EXEC)):
                            if bound > pos:
                                top = bound if bound < hi else hi
                                buckets[bucket] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                        if collecting:
                            gap_hist.observe(gap - 1)
                prev_retire = retire_t

                # ---------------- criticality signal ----------------
                # ROB head when this op finished executing: the oldest op
                # whose retirement is still pending at complete_t.  An op
                # "stalls retirement" when it is within commit-width of the
                # head *and* its own completion is what its retirement is
                # waiting on (an op whose retirement is bound by fetch or
                # older ops is not a bottleneck even if near the head).
                head = bisect_right(retire_times, complete_t, 0, idx)
                rob_distance = idx - head
                completion_bound = retire_t == complete_t + 1
                ctx.rob_distance = rob_distance
                ctx.stalls_retirement = (rob_distance < cfg.retire_width
                                         and completion_bound)
                ctx.l1_hit = level == "L1"
                ctx.hit_level = level

                # ---------------- control flow ----------------
                ctx.branch_mispredicted = False
                if is_control:
                    if collecting:
                        result.branches += 1
                    correct_cf = frontend.process_control(
                        uop.pc, op, uop.taken, uop.target)
                    if not correct_cf:
                        if collecting:
                            result.branch_mispredicts += 1
                        ctx.branch_mispredicted = True
                        t = complete_t + frontend.mispredict_penalty
                        if t > redirect_t:
                            redirect_t = t
                            redirect_cause = BRANCH_FLUSH
                            if events is not None:
                                events.record(complete_t, "flush", idx,
                                              uop.pc, op, BRANCH_FLUSH)

                # ---------------- value-prediction outcome ----------------
                vp_correct = True
                if prediction is not None:
                    vp_correct = prediction.value == uop.value
                    if collecting:
                        if is_load:
                            result.predicted_loads += 1
                        else:
                            result.predicted_nonloads += 1
                        if prediction.store_seq is not None:
                            result.mr_predictions += 1
                        else:
                            result.register_predictions += 1
                        attribution = result.by_source.setdefault(
                            prediction.source, [0, 0])
                        attribution[0] += 1
                        if vp_correct:
                            attribution[1] += 1
                            result.correct_predictions += 1
                        else:
                            result.wrong_predictions += 1
                            result.vp_flushes += 1
                    if not vp_correct:
                        t = complete_t + cfg.vp_penalty
                        if t > redirect_t:
                            redirect_t = t
                            redirect_cause = VP_FLUSH
                            if events is not None:
                                events.record(complete_t, "flush", idx,
                                              uop.pc, op, VP_FLUSH)

                # ---------------- architectural updates ----------------
                dest = uop.dest
                if dest is not None:
                    if prediction is not None and vp_correct:
                        avail = alloc_t + 1
                        if prediction.store_seq is not None:
                            rec = store_records.get(prediction.store_seq)
                            if rec is not None and rec[2] > avail:
                                avail = rec[2]
                        reg_ready[dest] = avail
                        reg_writer_load[dest] = False
                    else:
                        reg_ready[dest] = complete_t
                        reg_writer_load[dest] = is_load
                    writer_pc[dest] = uop.pc
                    writer_seq[dest] = idx

                if is_store:
                    num_stores += 1
                    if collecting:
                        result.stores += 1
                    self.store_sets.store_dispatched(uop.pc, idx)
                    record = (idx, uop.pc, complete_t, retire_t, uop.value)
                    store_by_addr[uop.addr & _ADDR_ALIGN] = record
                    store_by_pc[uop.pc] = idx
                    store_records[idx] = (uop.pc, uop.addr & _ADDR_ALIGN,
                                          complete_t, retire_t, uop.value)
                    store_retires.append(retire_t)
                    if len(store_records) > 4 * sq_size:
                        self._prune_stores(retire_t)
                if is_load:
                    load_retires.append(retire_t)

                retire_times.append(retire_t)
                if len(iq_heap) < iq_size:
                    heapq.heappush(iq_heap, issue_t)
                elif issue_t > iq_heap[0]:
                    heapq.heapreplace(iq_heap, issue_t)

                # ---------------- training ----------------
                predictor.train_execute(uop, ctx, prediction, vp_correct)
                predictor.epoch_tick(idx + 1)

                if timing is not None:
                    timing["alloc"][idx] = alloc_t
                    timing["ready"][idx] = ready
                    timing["issue"][idx] = issue_t
                    timing["complete"][idx] = complete_t
                    timing["retire"][idx] = retire_t
                    timing["mispredict"][idx] = ctx.branch_mispredicted

                if events is not None:
                    events.record(alloc_t, "alloc", idx, uop.pc, op)
                    events.record(issue_t, "issue", idx, uop.pc, op)
                    events.record(complete_t, "complete", idx, uop.pc, op)
                    events.record(retire_t, "retire", idx, uop.pc, op)

        result.cycles = prev_retire - cycle_base
        result.level_counts = {
            level: count - level_base.get(level, 0)
            for level, count in memory.level_counts.items()}
        result.events = events

    # ------------------------------------------------------------------
    # Guardrails (docs/ROBUSTNESS.md).
    # ------------------------------------------------------------------
    def _abort_nonterminating(self, idx: int, n: int, pc: int,
                              cycle: int) -> None:
        """Raise the ``max_cycles`` watchdog with a diagnostic snapshot
        of where the simulation was when it blew its cycle budget."""
        snapshot = {
            "op_index": idx,
            "trace_length": n,
            "pc": pc,
            "cycle": cycle,
            "max_cycles": self.max_cycles,
            "config": self.config.name,
            "predictor": self.predictor.name,
        }
        raise NonTerminatingSimulation(
            f"simulation exceeded max_cycles={self.max_cycles} at cycle "
            f"{cycle} (op {idx}/{n}, pc {pc:#x}); "
            "runaway configuration or model bug", snapshot)

    def _check_invariants(self, trace: TraceSource, warmup: int,
                          result: SimResult) -> None:
        """Opt-in post-run audit (``REPRO_CHECK_INVARIANTS=1``).

        Asserts the structural invariants of the timing model on the
        run that just finished: per-op event ordering (alloc ≤ issue,
        ready ≤ issue, issue < complete < retire), monotone in-order
        retirement, ROB/LQ/SQ occupancy never exceeding capacity, and
        the stall-cycle partition summing exactly to the cycle count.
        Raises :class:`~repro.errors.InvariantViolation` on the first
        violated property."""
        timing = result.timing

        def fail(message: str) -> None:
            """Raise :class:`InvariantViolation` tagged with the run identity."""
            raise InvariantViolation(
                f"invariant violated ({result.workload}/"
                f"{self.config.name}/{self.predictor.name}): {message}")

        if timing is not None:
            alloc = timing["alloc"]
            ready = timing["ready"]
            issue = timing["issue"]
            complete = timing["complete"]
            retire = timing["retire"]
            cfg = self.config
            loads: list = []
            stores: list = []
            prev = 0
            for idx, uop in enumerate(trace):
                if not (alloc[idx] <= issue[idx] and ready[idx] <= issue[idx]
                        and issue[idx] < complete[idx]
                        and complete[idx] < retire[idx]):
                    fail(f"op {idx}: event order alloc={alloc[idx]} "
                         f"ready={ready[idx]} issue={issue[idx]} "
                         f"complete={complete[idx]} retire={retire[idx]}")
                if retire[idx] < prev:
                    fail(f"op {idx}: retirement went backwards "
                         f"({retire[idx]} < {prev})")
                prev = retire[idx]
                if idx >= cfg.rob_size \
                        and alloc[idx] < retire[idx - cfg.rob_size]:
                    fail(f"op {idx}: ROB occupancy exceeds "
                         f"{cfg.rob_size}")
                if uop.op == opcodes.LOAD:
                    loads.append(idx)
                    if len(loads) > cfg.lq_size and alloc[idx] < \
                            retire[loads[-1 - cfg.lq_size]]:
                        fail(f"op {idx}: LQ occupancy exceeds "
                             f"{cfg.lq_size}")
                elif uop.op == opcodes.STORE:
                    stores.append(idx)
                    if len(stores) > cfg.sq_size and alloc[idx] < \
                            retire[stores[-1 - cfg.sq_size]]:
                        fail(f"op {idx}: SQ occupancy exceeds "
                             f"{cfg.sq_size}")
        if self.collect_stalls:
            stalled = sum(result.stall_cycles.values())
            if stalled != result.cycles:
                fail(f"stall partition sums to {stalled}, "
                     f"cycles = {result.cycles}")

    # ------------------------------------------------------------------
    def _publish(self, result: SimResult, telemetry: StatGroup,
                 stream: PassStats) -> StatGroup:
        """Assemble the per-run statistic tree: the engine's cycle
        accounting, the trace-delivery stats, and every component's
        published group."""
        source_group = telemetry.group(
            "source", "trace delivery (streaming bounded windows)")
        source_group.counter("ops", "micro-ops delivered", stream.ops)
        source_group.counter("chunks", "bounded windows delivered",
                             stream.chunks)
        source_group.counter("peak-window",
                             "largest resident window (micro-ops)",
                             stream.peak_window)
        engine_group = telemetry.group(
            "engine", "timing-loop backend and vector coverage")
        engine_group.counter(
            "backend", "backend code (0=reference 1=scalar 2=vector)",
            BACKENDS.index(self._resolve_backend()))
        engine_group.counter("vector-windows",
                             "windows timed by the vector recurrence",
                             self._vec_windows)
        engine_group.counter("vector-ops",
                             "micro-ops timed by the vector recurrence",
                             self._vec_ops)
        engine_group.counter("fallback-windows",
                             "windows timed by the scalar fallback",
                             self._vec_fallback_windows)
        engine_group.counter("fallback-ops",
                             "micro-ops timed by the scalar fallback",
                             self._vec_fallback_ops)
        engine_group.counter(
            "delegated",
            "vector run delegated whole to the scalar loop (0/1)",
            int(self._vec_delegated))
        pipeline_group = telemetry.group(
            "pipeline", "cycle accounting and stall attribution")
        pipeline_group.counter("cycles", "post-warmup cycles",
                               result.cycles)
        pipeline_group.counter("instructions", "post-warmup micro-ops",
                               result.instructions)
        stalls = pipeline_group.group("stalls",
                                      "post-warmup cycle partition")
        stalls.counters_from(result.stall_cycles)
        warm = pipeline_group.group("warmup-stalls",
                                    "warmup-prefix cycle partition")
        warm.counters_from(result.warmup_stall_cycles)
        self.frontend.publish_stats(
            telemetry.group("frontend", "branch prediction and fetch"))
        memory_group = telemetry.group("memory", "data-side hierarchy")
        memory_group.group(
            "levels", "post-warmup accesses served per level"
        ).counters_from(result.level_counts)
        self.memory.publish_stats(memory_group)
        self.predictor.publish_stats(
            telemetry.group("predictor", "value-predictor internals"))
        return telemetry

    def _prune_stores(self, now: int) -> None:
        """Drop store records that can no longer forward or be renamed."""
        dead = [seq for seq, rec in self._store_records.items()
                if rec[3] < now]
        for seq in dead:
            rec = self._store_records.pop(seq)
            pc, addr8 = rec[0], rec[1]
            if self._store_by_pc.get(pc) == seq:
                del self._store_by_pc[pc]
            entry = self._store_by_addr.get(addr8)
            if entry is not None and entry[0] == seq:
                del self._store_by_addr[addr8]


#: Keyword order ``simulate`` accepted positionally before the
#: keyword-only redesign; the deprecation shim maps old call sites
#: through it for one release.
_SIMULATE_LEGACY_ORDER = ("config", "predictor", "workload", "warmup",
                          "collect_timing", "collect_events",
                          "collect_stalls", "max_cycles")


def simulate(trace: Union[TraceSource, Sequence[MicroOp]], *legacy,
             config: Optional[CoreConfig] = None,
             predictor: Optional[ValuePredictor] = None,
             workload: str = "trace", warmup: int = 0,
             collect_timing: bool = False,
             collect_events: bool = False,
             collect_stalls: bool = True,
             max_cycles: Optional[int] = None,
             backend: Optional[str] = None) -> SimResult:
    """One-call convenience wrapper: build an engine and run a trace.

    Everything beyond the trace is keyword-only.  Old positional call
    sites (``simulate(trace, config, predictor, ...)``) still work for
    one release behind a :class:`DeprecationWarning`; see
    docs/TRACES.md for the migration guide.

    Parameters
    ----------
    trace:
        A :class:`~repro.trace.source.TraceSource` or a program-order
        :class:`~repro.isa.instruction.MicroOp` sequence.
    config:
        Core configuration (default :meth:`CoreConfig.skylake`).
    predictor:
        Hosted value predictor (``None`` → no-prediction baseline).
    workload:
        Label recorded on the result.
    warmup:
        Leading micro-ops excluded from statistics.
    collect_timing, collect_events, collect_stalls:
        Optional telemetry switches — see :class:`Engine`.
    max_cycles:
        Optional non-termination watchdog budget — see :class:`Engine`.
    backend:
        Timing-loop backend pin (``"reference"`` / ``"scalar"`` /
        ``"vector"``; ``None`` defers to the environment and the
        numpy autodetect — docs/VECTOR.md).

    >>> from repro.isa import alu
    >>> r = simulate([alu(0x400000 + 4 * i, dest=0, value=i)
    ...               for i in range(64)])
    >>> r.instructions
    64
    """
    if legacy:
        if len(legacy) > len(_SIMULATE_LEGACY_ORDER):
            raise TypeError(
                f"simulate() takes at most "
                f"{1 + len(_SIMULATE_LEGACY_ORDER)} positional arguments "
                f"({1 + len(legacy)} given)")
        warnings.warn(
            "positional arguments to simulate() beyond the trace are "
            "deprecated; pass config=, predictor=, ... as keywords",
            DeprecationWarning, stacklevel=2)
        defaults = (None, None, "trace", 0, False, False, True, None)
        current = (config, predictor, workload, warmup, collect_timing,
                   collect_events, collect_stalls, max_cycles)
        for name, value, default in zip(_SIMULATE_LEGACY_ORDER[:len(legacy)],
                                        current, defaults):
            if value is not default:
                raise TypeError(
                    f"simulate() got multiple values for argument {name!r}")
        (config, predictor, workload, warmup, collect_timing,
         collect_events, collect_stalls, max_cycles) = \
            tuple(legacy) + current[len(legacy):]
    engine = Engine(config or CoreConfig.skylake(), predictor,
                    collect_timing=collect_timing,
                    collect_events=collect_events,
                    collect_stalls=collect_stalls,
                    max_cycles=max_cycles, backend=backend)
    return engine.run(trace, workload=workload, warmup=warmup)
