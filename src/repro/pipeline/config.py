"""Core configuration (Table II of the paper).

Two first-class configurations are provided:

* :meth:`CoreConfig.skylake` — the 4-wide baseline similar to Intel
  Skylake: 224 ROB / 64 LQ / 60 SQ / 97 IQ, 8 execution ports, 8-wide
  retire, 20-cycle mispredict penalty.
* :meth:`CoreConfig.skylake_2x` — the paper's "futuristic up-scaled"
  core: all OOO resources and bandwidths doubled.

Execution-port structure follows Table II: 2 load ports, 1 store port
(store-address ports are shared with load ports; the fused store
micro-op occupies the store-data port), 4 ALU ports, 3 FP/AVX ports,
2 branch ports.  MUL/DIV issue on dedicated ALU-port slices.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.frontend.fetch import FrontEndConfig
from repro.isa import opcodes
from repro.memory.hierarchy import MemHierarchyConfig


class PortGroup:
    """An execution-unit class: ``count`` pipelined units with a fixed
    ``latency``; unpipelined units re-arm after ``latency`` cycles."""

    __slots__ = ("count", "latency", "pipelined")

    def __init__(self, count: int, latency: int, pipelined: bool = True) -> None:
        if count <= 0 or latency <= 0:
            raise ConfigError("count and latency must be positive")
        self.count = count
        self.latency = latency
        self.pipelined = pipelined

    def scaled(self, factor: int) -> "PortGroup":
        return PortGroup(self.count * factor, self.latency, self.pipelined)


def _skylake_ports() -> Dict[int, PortGroup]:
    return {
        opcodes.ALU: PortGroup(4, 1),
        opcodes.MUL: PortGroup(1, 3),
        opcodes.DIV: PortGroup(1, 18, pipelined=False),
        opcodes.FP: PortGroup(3, 4),
        opcodes.LOAD: PortGroup(2, 1),     # latency owned by the hierarchy
        opcodes.STORE: PortGroup(1, 1),
        opcodes.BRANCH: PortGroup(2, 1),
        opcodes.JUMP: PortGroup(2, 1),     # shares branch ports (modelled
        opcodes.IJUMP: PortGroup(2, 1),    # as same-sized groups)
        opcodes.NOP: PortGroup(4, 1),
    }


class CoreConfig:
    """Everything the engine needs to time a trace."""

    __slots__ = ("name", "fetch_width", "retire_width", "issue_width",
                 "rob_size", "lq_size", "sq_size", "iq_size",
                 "ports", "vp_penalty", "forward_latency",
                 "frontend", "memory", "mem_violation_penalty")

    def __init__(self, name: str, fetch_width: int, retire_width: int,
                 issue_width: int, rob_size: int, lq_size: int,
                 sq_size: int, iq_size: int,
                 ports: Dict[int, PortGroup],
                 vp_penalty: int = 20,
                 forward_latency: int = 5,
                 mem_violation_penalty: int = 20,
                 frontend: FrontEndConfig = None,
                 memory: MemHierarchyConfig = None) -> None:
        self.name = name
        self.fetch_width = fetch_width
        self.retire_width = retire_width
        self.issue_width = issue_width
        self.rob_size = rob_size
        self.lq_size = lq_size
        self.sq_size = sq_size
        self.iq_size = iq_size
        self.ports = ports
        self.vp_penalty = vp_penalty
        self.forward_latency = forward_latency
        self.mem_violation_penalty = mem_violation_penalty
        self.frontend = frontend or FrontEndConfig()
        self.memory = memory or MemHierarchyConfig()
        self.validate()

    def validate(self) -> None:
        """Reject inconsistent or degenerate configurations.

        Called from ``__init__``, so an invalid core never reaches the
        engine; raises :class:`~repro.errors.ConfigError` (a
        :class:`ValueError` subclass) naming the offending field.
        Checks: all widths and queue sizes positive, penalties and
        forwarding latency non-negative, the load/store/ALU/branch port
        classes present, and the LQ/SQ/IQ no larger than the ROB — an
        op occupies its queue entry until retirement, so a side queue
        deeper than the ROB could never fill and indicates a mis-scaled
        configuration."""
        for label, val in (("fetch_width", self.fetch_width),
                           ("retire_width", self.retire_width),
                           ("issue_width", self.issue_width),
                           ("rob_size", self.rob_size),
                           ("lq_size", self.lq_size),
                           ("sq_size", self.sq_size),
                           ("iq_size", self.iq_size)):
            if val <= 0:
                raise ConfigError(f"{label} must be positive")
        for label, val in (("vp_penalty", self.vp_penalty),
                           ("forward_latency", self.forward_latency),
                           ("mem_violation_penalty",
                            self.mem_violation_penalty)):
            if val < 0:
                raise ConfigError(f"{label} must be >= 0, got {val}")
        for label, val in (("lq_size", self.lq_size),
                           ("sq_size", self.sq_size),
                           ("iq_size", self.iq_size)):
            if val > self.rob_size:
                raise ConfigError(
                    f"{label} ({val}) exceeds rob_size ({self.rob_size}); "
                    "queue entries live until retirement")
        for op in (opcodes.ALU, opcodes.LOAD, opcodes.STORE,
                   opcodes.BRANCH):
            if op not in self.ports:
                raise ConfigError(
                    f"ports missing required op class "
                    f"{opcodes.op_name(op)}")

    # ------------------------------------------------------------------
    @classmethod
    def skylake(cls) -> "CoreConfig":
        """Table II: the 4-wide Skylake-like baseline."""
        return cls(
            name="skylake",
            fetch_width=4,
            retire_width=8,
            issue_width=8,
            rob_size=224,
            lq_size=64,
            sq_size=60,
            iq_size=97,
            ports=_skylake_ports(),
        )

    @classmethod
    def skylake_2x(cls) -> "CoreConfig":
        """§V: 8-wide future core, all resources and bandwidths doubled."""
        ports = {op: group.scaled(2) for op, group in _skylake_ports().items()}
        return cls(
            name="skylake-2x",
            fetch_width=8,
            retire_width=16,
            issue_width=16,
            rob_size=448,
            lq_size=128,
            sq_size=120,
            iq_size=194,
            ports=ports,
        )

    def port_plan(self) -> Tuple[Tuple[int, int, int, bool], ...]:
        """(op_class, unit_count, latency, pipelined) rows, for reports."""
        return tuple((op, g.count, g.latency, g.pipelined)
                     for op, g in sorted(self.ports.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CoreConfig {self.name} {self.fetch_width}-wide "
                f"ROB={self.rob_size}>")
