"""The out-of-order core: configuration, timing engine, VP interface."""

from repro.pipeline.config import CoreConfig, PortGroup
from repro.pipeline.engine import Engine, simulate
from repro.pipeline.results import SimResult
from repro.pipeline.vp_interface import (
    EngineContext,
    NoPredictor,
    Prediction,
    ValuePredictor,
)

__all__ = [
    "CoreConfig",
    "PortGroup",
    "Engine",
    "simulate",
    "SimResult",
    "ValuePredictor",
    "NoPredictor",
    "Prediction",
    "EngineContext",
]
