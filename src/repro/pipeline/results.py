"""Simulation result records."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.stalls import cpi_breakdown, empty_buckets
from repro.telemetry.stats import Counter, StatGroup
from repro.telemetry.trace import EventTrace

#: Bump when the shape of the serialised result (telemetry tree, stall
#: taxonomy, event schema) changes — participates in campaign-cache
#: keys so stale entries never deserialise into the new shape.
TELEMETRY_SCHEMA_VERSION = 3


class SimResult:
    """Outcome of one trace simulation.

    The headline metrics mirror the paper's reporting: ``ipc`` for
    performance and ``coverage`` (predicted loads / all loads) for
    value-prediction coverage.  Cycle accounting lives in two places:

    * ``stall_cycles`` — the post-warmup per-bucket cycle partition
      from the engine's stall-attribution pass
      (:mod:`repro.telemetry.stalls`); its values sum exactly to
      ``cycles``.
    * ``telemetry`` — the full :class:`~repro.telemetry.stats.StatGroup`
      tree every component published into (``source``, ``pipeline``,
      ``frontend``, ``memory``, ``predictor`` groups).
    """

    __slots__ = ("workload", "core", "predictor", "instructions", "cycles",
                 "loads", "stores", "branches",
                 "predicted_loads", "predicted_nonloads",
                 "correct_predictions", "wrong_predictions",
                 "vp_flushes", "branch_mispredicts", "mem_violations",
                 "level_counts", "timing", "mr_predictions",
                 "register_predictions", "by_source",
                 "stall_cycles", "warmup_stall_cycles",
                 "telemetry", "events")

    def __init__(self, workload: str, core: str, predictor: str) -> None:
        self.workload = workload
        self.core = core
        self.predictor = predictor
        self.instructions = 0
        self.cycles = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.predicted_loads = 0
        self.predicted_nonloads = 0
        self.correct_predictions = 0
        self.wrong_predictions = 0
        self.vp_flushes = 0
        self.branch_mispredicts = 0
        self.mem_violations = 0
        self.mr_predictions = 0
        self.register_predictions = 0
        #: source label -> [predictions used, correct] attribution.
        self.by_source: Dict[str, List[int]] = {}
        self.level_counts: Dict[str, int] = {}
        #: Post-warmup cycles per stall bucket (plus ``retiring``);
        #: sums exactly to ``cycles``.
        self.stall_cycles: Dict[str, int] = empty_buckets()
        #: Same partition for the warmup prefix, kept separate so the
        #: reported breakdown covers only the measured region.
        self.warmup_stall_cycles: Dict[str, int] = empty_buckets()
        #: The per-run statistic tree (see docs/TELEMETRY.md).
        self.telemetry: Optional[StatGroup] = None
        #: Optional bounded pipeline event trace
        #: (``Engine(collect_events=True)``).
        self.events: Optional[EventTrace] = None
        #: Optional per-op timing arrays (alloc/ready/issue/complete/retire)
        #: retained when the engine runs with ``collect_timing=True``.
        self.timing: Optional[Dict[str, List[int]]] = None

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Field-by-field equality — two runs of the same deterministic
        job (serial, parallel, or cache-restored) compare equal."""
        if not isinstance(other, SimResult):
            return NotImplemented
        return all(getattr(self, slot) == getattr(other, slot)
                   for slot in self.__slots__)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of load instructions that were value predicted —
        the paper's coverage definition (§VI-A)."""
        return self.predicted_loads / self.loads if self.loads else 0.0

    @property
    def accuracy(self) -> float:
        used = self.correct_predictions + self.wrong_predictions
        return self.correct_predictions / used if used else 1.0

    @property
    def predictions(self) -> int:
        return self.predicted_loads + self.predicted_nonloads

    @property
    def branch_mpki(self) -> float:
        """Branch mispredictions per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.instructions

    @property
    def llc_mpki(self) -> float:
        """LLC misses (DRAM accesses) per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.level_counts.get("DRAM", 0) / self.instructions

    # -- telemetry views ----------------------------------------------
    @property
    def frontend_stats(self) -> Dict[str, float]:
        """Flat front-end counters (compatibility view over the
        ``frontend`` telemetry group)."""
        return self._group_view("frontend")

    @property
    def predictor_stats(self) -> Dict[str, float]:
        """Flat predictor-internal counters (compatibility view over
        the ``predictor`` telemetry group)."""
        return self._group_view("predictor")

    def _group_view(self, name: str) -> Dict[str, float]:
        if self.telemetry is None:
            return {}
        group = self.telemetry.get(name)
        if not isinstance(group, StatGroup):
            return {}
        return {child_name: child.value
                for child_name, child in group.children.items()
                if isinstance(child, Counter)}

    def cpi_breakdown(self) -> Dict[str, float]:
        """Per-bucket cycles-per-instruction; sums to this run's CPI."""
        return cpi_breakdown(self.stall_cycles, self.instructions)

    def speedup_over(self, baseline: "SimResult") -> float:
        """IPC ratio versus a baseline run of the same trace."""
        if baseline.ipc == 0:
            raise ValueError("baseline IPC is zero")
        if baseline.instructions != self.instructions:
            raise ValueError(
                "speedup requires runs over the same trace: "
                f"{baseline.instructions} vs {self.instructions} instructions")
        return self.ipc / baseline.ipc

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.workload:<16} {self.core:<11} {self.predictor:<12} "
                f"IPC={self.ipc:5.3f} cov={self.coverage:6.1%} "
                f"acc={self.accuracy:6.2%} "
                f"brMiss={self.branch_mispredicts} vpFlush={self.vp_flushes}")

    def as_dict(self) -> dict:
        """Flat dict for tabulation/serialization."""
        return {
            "workload": self.workload,
            "core": self.core,
            "predictor": self.predictor,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "predicted_loads": self.predicted_loads,
            "vp_flushes": self.vp_flushes,
            "branch_mispredicts": self.branch_mispredicts,
            "mem_violations": self.mem_violations,
            "level_counts": dict(self.level_counts),
        }

    # -- full round-trip serialization ---------------------------------
    def to_dict(self) -> dict:
        """Complete JSON-serialisable representation; inverse of
        :meth:`from_dict` (``from_dict(to_dict(r)) == r``).  This is
        the campaign cache's on-disk format."""
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "workload": self.workload,
            "core": self.core,
            "predictor": self.predictor,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "predicted_loads": self.predicted_loads,
            "predicted_nonloads": self.predicted_nonloads,
            "correct_predictions": self.correct_predictions,
            "wrong_predictions": self.wrong_predictions,
            "vp_flushes": self.vp_flushes,
            "branch_mispredicts": self.branch_mispredicts,
            "mem_violations": self.mem_violations,
            "mr_predictions": self.mr_predictions,
            "register_predictions": self.register_predictions,
            "by_source": {key: list(value)
                          for key, value in self.by_source.items()},
            "level_counts": dict(self.level_counts),
            "stall_cycles": dict(self.stall_cycles),
            "warmup_stall_cycles": dict(self.warmup_stall_cycles),
            "telemetry": None if self.telemetry is None
            else self.telemetry.to_dict(),
            "events": None if self.events is None
            else self.events.to_dict(),
            "timing": None if self.timing is None
            else {key: list(values) for key, values in self.timing.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output.  Raises
        :class:`ValueError` for payloads from another schema version —
        the campaign cache treats that as a miss."""
        schema = payload.get("schema")
        if schema != TELEMETRY_SCHEMA_VERSION:
            raise ValueError(
                f"result schema {schema!r} != {TELEMETRY_SCHEMA_VERSION}")
        result = cls(payload["workload"], payload["core"],
                     payload["predictor"])
        for field in ("instructions", "cycles", "loads", "stores",
                      "branches", "predicted_loads", "predicted_nonloads",
                      "correct_predictions", "wrong_predictions",
                      "vp_flushes", "branch_mispredicts", "mem_violations",
                      "mr_predictions", "register_predictions"):
            setattr(result, field, payload[field])
        result.by_source = {key: list(value)
                            for key, value in payload["by_source"].items()}
        result.level_counts = dict(payload["level_counts"])
        result.stall_cycles = dict(payload["stall_cycles"])
        result.warmup_stall_cycles = dict(payload["warmup_stall_cycles"])
        if payload["telemetry"] is not None:
            result.telemetry = StatGroup.from_dict("sim",
                                                   payload["telemetry"])
        if payload["events"] is not None:
            result.events = EventTrace.from_dict(payload["events"])
        if payload["timing"] is not None:
            result.timing = {key: list(values)
                             for key, values in payload["timing"].items()}
        return result
