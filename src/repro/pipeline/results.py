"""Simulation result records."""

from __future__ import annotations

from typing import Dict, List, Optional


class SimResult:
    """Outcome of one trace simulation.

    The headline metrics mirror the paper's reporting: ``ipc`` for
    performance and ``coverage`` (predicted loads / all loads) for
    value-prediction coverage.
    """

    __slots__ = ("workload", "core", "predictor", "instructions", "cycles",
                 "loads", "stores", "branches",
                 "predicted_loads", "predicted_nonloads",
                 "correct_predictions", "wrong_predictions",
                 "vp_flushes", "branch_mispredicts", "mem_violations",
                 "level_counts", "frontend_stats", "predictor_stats",
                 "timing", "mr_predictions", "register_predictions",
                 "by_source")

    def __init__(self, workload: str, core: str, predictor: str) -> None:
        self.workload = workload
        self.core = core
        self.predictor = predictor
        self.instructions = 0
        self.cycles = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.predicted_loads = 0
        self.predicted_nonloads = 0
        self.correct_predictions = 0
        self.wrong_predictions = 0
        self.vp_flushes = 0
        self.branch_mispredicts = 0
        self.mem_violations = 0
        self.mr_predictions = 0
        self.register_predictions = 0
        #: source label -> [predictions used, correct] attribution.
        self.by_source: Dict[str, List[int]] = {}
        self.level_counts: Dict[str, int] = {}
        self.frontend_stats: Dict[str, float] = {}
        self.predictor_stats: Dict[str, float] = {}
        #: Optional per-op timing arrays (alloc/ready/issue/complete/retire)
        #: retained when the engine runs with ``collect_timing=True``.
        self.timing: Optional[Dict[str, List[int]]] = None

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Field-by-field equality — two runs of the same deterministic
        job (serial, parallel, or cache-restored) compare equal."""
        if not isinstance(other, SimResult):
            return NotImplemented
        return all(getattr(self, slot) == getattr(other, slot)
                   for slot in self.__slots__)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of load instructions that were value predicted —
        the paper's coverage definition (§VI-A)."""
        return self.predicted_loads / self.loads if self.loads else 0.0

    @property
    def accuracy(self) -> float:
        used = self.correct_predictions + self.wrong_predictions
        return self.correct_predictions / used if used else 1.0

    @property
    def predictions(self) -> int:
        return self.predicted_loads + self.predicted_nonloads

    @property
    def branch_mpki(self) -> float:
        """Branch mispredictions per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.instructions

    @property
    def llc_mpki(self) -> float:
        """LLC misses (DRAM accesses) per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.level_counts.get("DRAM", 0) / self.instructions

    def speedup_over(self, baseline: "SimResult") -> float:
        """IPC ratio versus a baseline run of the same trace."""
        if baseline.ipc == 0:
            raise ValueError("baseline IPC is zero")
        if baseline.instructions != self.instructions:
            raise ValueError(
                "speedup requires runs over the same trace: "
                f"{baseline.instructions} vs {self.instructions} instructions")
        return self.ipc / baseline.ipc

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.workload:<16} {self.core:<11} {self.predictor:<12} "
                f"IPC={self.ipc:5.3f} cov={self.coverage:6.1%} "
                f"acc={self.accuracy:6.2%} "
                f"brMiss={self.branch_mispredicts} vpFlush={self.vp_flushes}")

    def as_dict(self) -> dict:
        """Flat dict for tabulation/serialization."""
        return {
            "workload": self.workload,
            "core": self.core,
            "predictor": self.predictor,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "predicted_loads": self.predicted_loads,
            "vp_flushes": self.vp_flushes,
            "branch_mispredicts": self.branch_mispredicts,
            "mem_violations": self.mem_violations,
            "level_counts": dict(self.level_counts),
        }
