"""Vectorized structure-of-arrays timing loop (the ``vector`` backend).

Third implementation of the engine's per-op loop (docs/VECTOR.md).  The
scalar loops interleave *state-machine* work (branch predictors,
caches, prefetchers — one Python call per op) with the *timestamp
recurrence* (alloc/ready/issue/complete/retire).  The timing-coupling
analysis behind this module is that almost all of the state-machine
work depends only on the program-order op stream, never on computed
timestamps:

* front-end fetch (I-cache + line tracking) — program-order only;
* control prediction (TAGE/ITTAGE/BTB/history) — program-order only;
* the cache hierarchy front half (:meth:`MemoryHierarchy.access_front`)
  — program-order only; exactly one piece, the DRAM bank queue, reads
  the issue cycle;
* store→load forwarding — timestamp-coupled (a load's behaviour
  depends on the forwarding store's *complete* time).

So the vector loop consumes whole structure-of-arrays windows
(:meth:`~repro.trace.source.TraceSource.soa_windows`): it runs the
three program-order machines as *pre-passes* over each window (batched,
no per-op attribute chains), then sweeps a stripped-down timestamp
recurrence over plain list columns, deferring only the DRAM tail calls
to their exact issue cycles.  Windows where a load may alias an
in-flight store (the one timestamp coupling that cannot be hoisted) run
through an embedded scalar fallback loop instead; runs using predictor
hooks or event collection delegate entirely to
:meth:`Engine._time_trace`.  Either way the result is **bit-identical**
to both scalar loops — the three-loop identity contract asserted by
``tests/test_perf_neutrality.py`` and policed by reprolint RL003.

Fallback rules (docs/VECTOR.md):

1. **Whole-run delegation** — the predictor overrides any engine hook
   (``predict`` / ``train_execute`` / ``epoch_tick`` /
   ``on_forwarding``), or the run collects pipeline events.  Hooks see
   per-op context (branch history, ROB distance) that only a scalar
   sweep maintains.
2. **Per-window scalar fallback** — some load's 8-byte block matches an
   in-window store or a carried in-flight store
   (:meth:`SoaWindow.aliases_stores`), so forwarding, memory-ordering
   violations and store-set training may fire.  The window runs in the
   embedded scalar loop; vector resumes at the next window.

The driver publishes its coverage through the ``engine.*`` telemetry
group (vector vs fallback window/op counts, delegation flag).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.isa import opcodes
from repro.pipeline.engine import (_ADDR_ALIGN, _GROUP_TAB, _IS_CONTROL_TAB,
                                   _NO_CYCLE_LIMIT)
from repro.pipeline.results import SimResult
from repro.pipeline.vp_interface import ValuePredictor
from repro.telemetry.stalls import (
    BRANCH_FLUSH,
    FRONTEND_STARVED,
    HEAD_WAIT_EXEC,
    HEAD_WAIT_LOAD,
    IQ_FULL,
    LQ_FULL,
    MEM_FLUSH,
    PORT_CONTENTION,
    RETIRING,
    ROB_FULL,
    SQ_FULL,
)
from repro.trace.source import TraceSource

if TYPE_CHECKING:  # pragma: no cover - typing only (circular at runtime)
    from repro.pipeline.engine import Engine


def time_trace_vector(engine: "Engine", trace: TraceSource, warmup: int,
                      result: SimResult, gap_hist) -> None:
    """Time ``trace`` with the vector backend, bit-identically to
    :meth:`Engine._time_trace` (see the module docstring for the
    decomposition argument and the fallback rules)."""
    predictor = engine.predictor
    pcls = type(predictor)
    # Rule 1: any overridden predictor hook (or event collection) needs
    # the per-op scalar sweep — delegate the whole run.
    if (pcls.predict is not ValuePredictor.predict
            or pcls.train_execute is not ValuePredictor.train_execute
            or pcls.epoch_tick is not ValuePredictor.epoch_tick
            or pcls.on_forwarding is not ValuePredictor.on_forwarding
            or engine.collect_events):
        engine._vec_delegated = True
        engine._time_trace(trace, warmup, result, gap_hist)
        return

    cfg = engine.config
    frontend = engine.frontend
    memory = engine.memory
    n = len(trace)

    cycle_base = 0
    level_base = None  # snapped when crossing the warmup edge

    reg_ready = [0] * 16
    reg_writer_load = [False] * 16
    writer_pc = [0] * 16
    writer_seq = [-1] * 16
    engine._reg_ready = reg_ready
    engine._ctx.writer_pc = writer_pc
    engine._ctx.writer_seq = writer_seq

    retire_times: list = []
    engine._retire_times = retire_times
    load_retires: list = []
    store_retires: list = []
    iq_heap: list = []

    engine._store_by_addr = {}
    engine._store_by_pc = {}
    engine._store_records = {}
    store_by_addr = engine._store_by_addr
    store_by_pc = engine._store_by_pc
    store_records = engine._store_records

    # Inlined bandwidth machines (see _WidthMachine.schedule).
    alloc_width = cfg.fetch_width
    alloc_cycle = -1
    alloc_count = 0
    retire_bw = cfg.retire_width
    retire_cycle = -1
    retire_count = 0
    cycle_limit = engine.max_cycles if engine.max_cycles is not None \
        else _NO_CYCLE_LIMIT

    port_heaps = {key: list(h) for key, h in engine._port_heaps.items()}
    for heap in port_heaps.values():
        heapq.heapify(heap)
    heap_tab = [port_heaps.get(group) for group in
                range(max(port_heaps, default=0) + 1)]
    issue_bw = list(engine._issue_bw)
    heapq.heapify(issue_bw)

    redirect_t = 0
    redirect_cause = FRONTEND_STARVED  # placeholder until a flush
    prev_retire = 0
    num_loads = 0
    num_stores = 0

    collect_stalls = engine.collect_stalls
    main_buckets = result.stall_cycles
    warmup_buckets = result.warmup_stall_cycles
    main_retiring = 0
    warm_retiring = 0
    observe_gap = gap_hist.observe

    timing = None
    if engine.collect_timing:
        timing = {k: [0] * n for k in
                  ("alloc", "ready", "issue", "complete", "retire")}
        timing["mispredict"] = [False] * n
        result.timing = timing

    # Headline counters kept in locals, written back after the loop.
    # Prediction counters stay zero: a run that could predict anything
    # was delegated above.
    c_loads = 0
    c_stores = 0
    c_branches = 0
    c_branch_miss = 0
    c_mem_viol = 0

    rob_size = cfg.rob_size
    iq_size = cfg.iq_size
    lq_size = cfg.lq_size
    sq_size = cfg.sq_size
    fwd_latency = cfg.forward_latency
    # Unreachable on this backend (a predictor able to mispredict was
    # delegated above); bound anyway so the config surface read here
    # stays equal to the scalar loops' (reprolint RL003).
    vp_penalty = cfg.vp_penalty  # noqa: F841
    mem_violation_penalty = cfg.mem_violation_penalty
    mispredict_penalty = frontend.mispredict_penalty
    store_prune_limit = 4 * sq_size

    # Bound methods/constants hoisted out of the loops.
    group_tab = _GROUP_TAB
    is_control_tab = _IS_CONTROL_TAB
    push_tab = engine._push_tab
    lat_tab = engine._lat_tab
    heappush = heapq.heappush
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace
    memory_access = memory.access
    access_front = memory.access_front
    dram_access = memory.dram.access
    llc_latency = memory.config.llc_latency
    process_control = frontend.process_control
    fetch_bubbles = frontend.fetch_bubbles
    load_dependence = engine.store_sets.load_dependence
    record_violation = engine.store_sets.record_violation
    store_dispatched = engine.store_sets.store_dispatched
    prune_stores = engine._prune_stores
    abort_nonterminating = engine._abort_nonterminating
    icache_line = frontend.config.icache_line
    last_fetch_line = frontend._last_fetch_line
    LOAD_OP = opcodes.LOAD
    STORE_OP = opcodes.STORE
    ADDR_ALIGN = _ADDR_ALIGN

    vec_windows = 0
    vec_ops = 0
    fb_windows = 0
    fb_ops = 0
    base = 0  # global index of the current window's first op

    for win in trace.soa_windows():
        wn = win.n
        if not win.aliases_stores(store_by_addr):
            # ---------------- vector window ----------------
            win.load_columns()  # deferred columns, paid only on this path
            vec_windows += 1
            vec_ops += wn
            pcs = win.pcs
            ops_col = win.ops
            dests = win.dests
            srcs_col = win.srcs
            values = win.values
            addrs = win.addrs
            takens = win.takens
            targets = win.targets

            # Pre-pass 1: fetch bubbles at I-cache line changes (the
            # only points the scalar loops consult the front end).
            bub_idx: list = []
            bub_val: list = []
            for i in win.line_change_indices(icache_line, last_fetch_line):
                b = fetch_bubbles(pcs[i])
                if b:
                    bub_idx.append(i)
                    bub_val.append(b)
            last_fetch_line = pcs[wn - 1] // icache_line

            # Pre-pass 2: control prediction in program order.
            ctrl_idx = win.control_indices()
            ctrl_ok = [process_control(pcs[i], ops_col[i], takens[i],
                                       targets[i]) for i in ctrl_idx]

            # Pre-pass 3: the cache front half in program order.  A -1
            # latency marks a full miss whose DRAM tail is owed at the
            # op's exact issue (load) or complete (store) cycle.  The
            # post-warmup level snapshot is taken mid-pass so mixed
            # windows stay exact.
            mem_lat: list = []
            for i in win.memory_indices():
                if level_base is None and base + i >= warmup:
                    level_base = dict(memory.level_counts)
                front = access_front(pcs[i], addrs[i],
                                     ops_col[i] == STORE_OP)
                mem_lat.append(-1 if front is None else front[0])

            # Timestamp recurrence over the columns.
            bub_ptr = 0
            nbub = len(bub_idx)
            ctrl_ptr = 0
            nctrl = len(ctrl_idx)
            mem_ptr = 0
            for i in range(wn):
                gidx = base + i
                op = ops_col[i]
                pc = pcs[i]
                is_load = op == LOAD_OP
                is_store = op == STORE_OP
                collecting = gidx >= warmup
                if gidx == warmup:
                    cycle_base = prev_retire

                # ---------------- front end / allocate ----------------
                earliest = redirect_t
                alloc_cause = redirect_cause
                if bub_ptr < nbub and bub_idx[bub_ptr] == i:
                    bubbles = bub_val[bub_ptr]
                    bub_ptr += 1
                    base_t = earliest if earliest > alloc_cycle \
                        else alloc_cycle
                    earliest = base_t + bubbles
                    alloc_cause = FRONTEND_STARVED
                if gidx >= rob_size:
                    t = retire_times[gidx - rob_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = ROB_FULL
                if len(iq_heap) >= iq_size and iq_heap[0] > earliest:
                    earliest = iq_heap[0]
                    alloc_cause = IQ_FULL
                if is_load and num_loads >= lq_size:
                    t = load_retires[num_loads - lq_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = LQ_FULL
                if is_store and num_stores >= sq_size:
                    t = store_retires[num_stores - sq_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = SQ_FULL
                # Inlined alloc-width machine.
                if earliest > alloc_cycle:
                    alloc_cycle = earliest
                    alloc_count = 1
                elif alloc_count >= alloc_width:
                    alloc_cycle += 1
                    alloc_count = 1
                else:
                    alloc_count += 1
                alloc_t = alloc_cycle

                # No forwarding candidates exist in a vector window
                # (the eligibility probe ran before any mutation), so
                # the fwd/violation paths vanish entirely.
                if is_load:
                    num_loads += 1
                    if collecting:
                        c_loads += 1

                # ---------------- dataflow readiness ----------------
                ready = alloc_t + 1
                dep_load = False
                for src in srcs_col[i]:
                    t = reg_ready[src]
                    if t > ready:
                        ready = t
                        dep_load = reg_writer_load[src]

                # ---------------- issue ----------------
                heap = heap_tab[group_tab[op]]
                port_free = heappop(heap)
                bw_free = heappop(issue_bw)
                issue_t = ready
                if port_free > issue_t:
                    issue_t = port_free
                if bw_free > issue_t:
                    issue_t = bw_free
                heappush(heap, issue_t + push_tab[op])
                heappush(issue_bw, issue_t + 1)

                # ---------------- execute / complete ----------------
                if is_load:
                    latency = mem_lat[mem_ptr]
                    mem_ptr += 1
                    if latency < 0:
                        latency = llc_latency + dram_access(addrs[i],
                                                            issue_t)
                    complete_t = issue_t + latency
                elif is_store:
                    complete_t = issue_t + 1
                    if mem_lat[mem_ptr] < 0:
                        dram_access(addrs[i], complete_t)
                    mem_ptr += 1
                else:
                    complete_t = issue_t + lat_tab[op]

                # ---------------- retire (inlined width machine) ------
                earliest_r = complete_t + 1
                if prev_retire > earliest_r:
                    earliest_r = prev_retire
                if earliest_r > retire_cycle:
                    retire_cycle = earliest_r
                    retire_count = 1
                elif retire_count >= retire_bw:
                    retire_cycle += 1
                    retire_count = 1
                else:
                    retire_count += 1
                retire_t = retire_cycle
                if retire_t > cycle_limit:
                    abort_nonterminating(gidx, n, pc, retire_t)

                # ---------------- cycle accounting ----------------
                gap = retire_t - prev_retire
                if gap > 0 and collect_stalls:
                    if collecting:
                        main_retiring += 1
                        buckets = main_buckets
                    else:
                        warm_retiring += 1
                        buckets = warmup_buckets
                    if gap > 1:
                        hi = retire_t - 1
                        pos = prev_retire
                        while True:
                            if earliest > pos:
                                top = earliest if earliest < hi else hi
                                buckets[alloc_cause] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            if alloc_t > pos:
                                top = alloc_t if alloc_t < hi else hi
                                buckets[FRONTEND_STARVED] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            if ready > pos:
                                top = ready if ready < hi else hi
                                buckets[HEAD_WAIT_LOAD if dep_load
                                        else HEAD_WAIT_EXEC] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            if issue_t > pos:
                                top = issue_t if issue_t < hi else hi
                                buckets[PORT_CONTENTION] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            buckets[HEAD_WAIT_LOAD if is_load
                                    else HEAD_WAIT_EXEC] += hi - pos
                            break
                        if collecting:
                            observe_gap(gap - 1)
                prev_retire = retire_t

                # ---------------- control flow ----------------
                branch_misp = False
                if ctrl_ptr < nctrl and ctrl_idx[ctrl_ptr] == i:
                    correct_cf = ctrl_ok[ctrl_ptr]
                    ctrl_ptr += 1
                    if collecting:
                        c_branches += 1
                    if not correct_cf:
                        if collecting:
                            c_branch_miss += 1
                        branch_misp = True
                        t = complete_t + mispredict_penalty
                        if t > redirect_t:
                            redirect_t = t
                            redirect_cause = BRANCH_FLUSH

                # ---------------- architectural updates ----------------
                dest = dests[i]
                if dest >= 0:
                    reg_ready[dest] = complete_t
                    reg_writer_load[dest] = is_load

                if is_store:
                    num_stores += 1
                    if collecting:
                        c_stores += 1
                    store_dispatched(pc, gidx)
                    addr8 = addrs[i] & ADDR_ALIGN
                    value = values[i]
                    store_by_addr[addr8] = (gidx, pc, complete_t,
                                            retire_t, value)
                    store_by_pc[pc] = gidx
                    store_records[gidx] = (pc, addr8, complete_t,
                                           retire_t, value)
                    store_retires.append(retire_t)
                    if len(store_records) > store_prune_limit:
                        prune_stores(retire_t)
                if is_load:
                    load_retires.append(retire_t)

                retire_times.append(retire_t)
                if len(iq_heap) < iq_size:
                    heappush(iq_heap, issue_t)
                elif issue_t > iq_heap[0]:
                    heapreplace(iq_heap, issue_t)

                if timing is not None:
                    timing["alloc"][gidx] = alloc_t
                    timing["ready"][gidx] = ready
                    timing["issue"][gidx] = issue_t
                    timing["complete"][gidx] = complete_t
                    timing["retire"][gidx] = retire_t
                    timing["mispredict"][gidx] = branch_misp
        else:
            # ---------------- scalar fallback window ----------------
            # Rule 2: a load may alias an in-flight store, so this
            # window runs the full per-op loop — the hook-free
            # specialization of Engine._time_trace, sharing all
            # carried state with the vector windows around it.
            fb_windows += 1
            fb_ops += wn
            for i, uop in enumerate(win.to_microops()):
                gidx = base + i
                op = uop.op
                pc = uop.pc
                is_load = op == LOAD_OP
                is_store = op == STORE_OP
                collecting = gidx >= warmup
                if gidx == warmup:
                    cycle_base = prev_retire
                    level_base = dict(memory.level_counts)

                # ---------------- front end / allocate ----------------
                earliest = redirect_t
                alloc_cause = redirect_cause
                line = pc // icache_line
                if line != last_fetch_line:
                    last_fetch_line = line
                    bubbles = fetch_bubbles(pc)
                    if bubbles:
                        base_t = earliest if earliest > alloc_cycle \
                            else alloc_cycle
                        earliest = base_t + bubbles
                        alloc_cause = FRONTEND_STARVED
                if gidx >= rob_size:
                    t = retire_times[gidx - rob_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = ROB_FULL
                if len(iq_heap) >= iq_size and iq_heap[0] > earliest:
                    earliest = iq_heap[0]
                    alloc_cause = IQ_FULL
                if is_load and num_loads >= lq_size:
                    t = load_retires[num_loads - lq_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = LQ_FULL
                if is_store and num_stores >= sq_size:
                    t = store_retires[num_stores - sq_size]
                    if t > earliest:
                        earliest = t
                        alloc_cause = SQ_FULL
                # Inlined alloc-width machine.
                if earliest > alloc_cycle:
                    alloc_cycle = earliest
                    alloc_count = 1
                elif alloc_count >= alloc_width:
                    alloc_cycle += 1
                    alloc_count = 1
                else:
                    alloc_count += 1
                alloc_t = alloc_cycle

                # ---------------- forwarding lookup ----------------
                fwd = None
                if is_load:
                    num_loads += 1
                    if collecting:
                        c_loads += 1
                    entry = store_by_addr.get(uop.addr & ADDR_ALIGN)
                    if entry is not None and entry[3] >= alloc_t:
                        fwd = entry  # (seq, pc, complete, retire, value)

                # ---------------- dataflow readiness ----------------
                ready = alloc_t + 1
                dep_load = False
                for src in uop.srcs:
                    t = reg_ready[src]
                    if t > ready:
                        ready = t
                        dep_load = reg_writer_load[src]

                violation = False
                if fwd is not None:
                    store_complete = fwd[2]
                    dep = load_dependence(pc)
                    if dep is not None:
                        if store_complete > ready:
                            ready = store_complete
                            dep_load = False
                    elif store_complete > ready:
                        violation = True

                # ---------------- issue ----------------
                heap = heap_tab[group_tab[op]]
                port_free = heappop(heap)
                bw_free = heappop(issue_bw)
                issue_t = ready
                if port_free > issue_t:
                    issue_t = port_free
                if bw_free > issue_t:
                    issue_t = bw_free
                heappush(heap, issue_t + push_tab[op])
                heappush(issue_bw, issue_t + 1)

                # ---------------- execute / complete ----------------
                if is_load:
                    if fwd is not None and not violation:
                        store_complete = fwd[2]
                        base_t = issue_t if issue_t > store_complete \
                            else store_complete
                        complete_t = base_t + fwd_latency
                    else:
                        latency, _level = memory_access(pc, uop.addr,
                                                        issue_t)
                        complete_t = issue_t + latency
                        if violation:
                            if collecting:
                                c_mem_viol += 1
                            record_violation(pc, fwd[1])
                            t = complete_t + mem_violation_penalty
                            if t > redirect_t:
                                redirect_t = t
                                redirect_cause = MEM_FLUSH
                elif is_store:
                    complete_t = issue_t + 1
                    memory_access(pc, uop.addr, complete_t, is_store=True)
                else:
                    complete_t = issue_t + lat_tab[op]

                # ---------------- retire (inlined width machine) ------
                earliest_r = complete_t + 1
                if prev_retire > earliest_r:
                    earliest_r = prev_retire
                if earliest_r > retire_cycle:
                    retire_cycle = earliest_r
                    retire_count = 1
                elif retire_count >= retire_bw:
                    retire_cycle += 1
                    retire_count = 1
                else:
                    retire_count += 1
                retire_t = retire_cycle
                if retire_t > cycle_limit:
                    abort_nonterminating(gidx, n, pc, retire_t)

                # ---------------- cycle accounting ----------------
                gap = retire_t - prev_retire
                if gap > 0 and collect_stalls:
                    if collecting:
                        main_retiring += 1
                        buckets = main_buckets
                    else:
                        warm_retiring += 1
                        buckets = warmup_buckets
                    if gap > 1:
                        hi = retire_t - 1
                        pos = prev_retire
                        while True:
                            if earliest > pos:
                                top = earliest if earliest < hi else hi
                                buckets[alloc_cause] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            if alloc_t > pos:
                                top = alloc_t if alloc_t < hi else hi
                                buckets[FRONTEND_STARVED] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            if ready > pos:
                                top = ready if ready < hi else hi
                                buckets[HEAD_WAIT_LOAD if dep_load
                                        else HEAD_WAIT_EXEC] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            if issue_t > pos:
                                top = issue_t if issue_t < hi else hi
                                buckets[PORT_CONTENTION] += top - pos
                                pos = top
                                if pos == hi:
                                    break
                            buckets[HEAD_WAIT_LOAD if is_load
                                    else HEAD_WAIT_EXEC] += hi - pos
                            break
                        if collecting:
                            observe_gap(gap - 1)
                prev_retire = retire_t

                # ---------------- control flow ----------------
                branch_misp = False
                if is_control_tab[op]:
                    if collecting:
                        c_branches += 1
                    correct_cf = process_control(pc, op, uop.taken,
                                                 uop.target)
                    if not correct_cf:
                        if collecting:
                            c_branch_miss += 1
                        branch_misp = True
                        t = complete_t + mispredict_penalty
                        if t > redirect_t:
                            redirect_t = t
                            redirect_cause = BRANCH_FLUSH

                # ---------------- architectural updates ----------------
                dest = uop.dest
                if dest is not None:
                    reg_ready[dest] = complete_t
                    reg_writer_load[dest] = is_load

                if is_store:
                    num_stores += 1
                    if collecting:
                        c_stores += 1
                    store_dispatched(pc, gidx)
                    addr8 = uop.addr & ADDR_ALIGN
                    value = uop.value
                    store_by_addr[addr8] = (gidx, pc, complete_t,
                                            retire_t, value)
                    store_by_pc[pc] = gidx
                    store_records[gidx] = (pc, addr8, complete_t,
                                           retire_t, value)
                    store_retires.append(retire_t)
                    if len(store_records) > store_prune_limit:
                        prune_stores(retire_t)
                if is_load:
                    load_retires.append(retire_t)

                retire_times.append(retire_t)
                if len(iq_heap) < iq_size:
                    heappush(iq_heap, issue_t)
                elif issue_t > iq_heap[0]:
                    heapreplace(iq_heap, issue_t)

                if timing is not None:
                    timing["alloc"][gidx] = alloc_t
                    timing["ready"][gidx] = ready
                    timing["issue"][gidx] = issue_t
                    timing["complete"][gidx] = complete_t
                    timing["retire"][gidx] = retire_t
                    timing["mispredict"][gidx] = branch_misp
        base += wn

    # Write the local accumulators back to the result (the prediction
    # family is structurally zero on this backend — see the delegation
    # rule — but assigned for symmetry with the scalar loops).
    main_buckets[RETIRING] += main_retiring
    warmup_buckets[RETIRING] += warm_retiring
    result.loads = c_loads
    result.stores = c_stores
    result.branches = c_branches
    result.branch_mispredicts = c_branch_miss
    result.mem_violations = c_mem_viol
    result.predicted_loads = 0
    result.predicted_nonloads = 0
    result.mr_predictions = 0
    result.register_predictions = 0
    result.correct_predictions = 0
    result.wrong_predictions = 0
    result.vp_flushes = 0

    result.cycles = prev_retire - cycle_base
    if level_base is None:
        # The warmup edge was never crossed by a memory pre-pass (no
        # post-warmup memory ops): the counts have not moved since the
        # edge, so snapshotting now yields the same delta.
        level_base = dict(memory.level_counts)
    result.level_counts = {
        level: count - level_base.get(level, 0)
        for level, count in memory.level_counts.items()}
    result.events = None

    engine._vec_windows = vec_windows
    engine._vec_ops = vec_ops
    engine._vec_fallback_windows = fb_windows
    engine._vec_fallback_ops = fb_ops


__all__ = ["time_trace_vector"]
