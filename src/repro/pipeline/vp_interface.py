"""Contract between the timing engine and value predictors.

Any predictor — FVP, the baselines, or a user-supplied design — plugs
into the engine through :class:`ValuePredictor`.  The engine calls:

* :meth:`ValuePredictor.predict` when a micro-op allocates into the
  OOO (the front-end lookup point of §IV-E).  Returning a
  :class:`Prediction` means the predictor is confident and the machine
  *uses* the value: consumers wake up at the predicted-value writeback,
  and a validation is scheduled at the op's completion.  Returning
  ``None`` means no prediction (the op executes normally).
* :meth:`ValuePredictor.train_execute` when the op executes, with the
  retirement-stall signal the CIT heuristic needs.
* :meth:`ValuePredictor.on_forwarding` when the LSQ forwards a store's
  data to a load (the MR training tap of §IV-D).
* :meth:`ValuePredictor.epoch_tick` once per retired instruction so
  predictors can implement epoch resets (§IV-A1).

The :class:`EngineContext` gives predictors exactly the architectural
visibility the paper's hardware has: the 32-branch global history, the
PC-augmented RAT (last writer PC per architectural register), and the
in-flight store tracking that MR and DLVP tap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.instruction import MicroOp


@dataclass(frozen=True, repr=False)
class Prediction:
    """A confident value prediction consumed by the engine.

    Predictions are immutable value objects: once a predictor hands one
    to the engine it must not change (the engine compares it against
    the architectural value at completion, possibly many cycles later),
    and two predictions compare equal iff they carry the same value,
    store tag, and source.

    Attributes
    ----------
    value:
        Predicted 64-bit result; the engine validates it against the
        trace's architectural value at completion.
    store_seq:
        When not ``None``, this is a memory-renaming prediction: the
        sequence number of the in-flight store whose data the load's
        consumers will read.  The engine makes the value available when
        that store's data is ready rather than at allocation.
    source:
        Label of the component that produced the prediction (``"lv"``,
        ``"cv"``, ``"mr"``, ``"stride"``, ...) for attribution stats.
    """

    value: int
    store_seq: Optional[int] = None
    source: str = "vp"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = f" store_seq={self.store_seq}" if self.store_seq is not None \
            else ""
        return f"<Prediction {self.source} value={self.value:#x}{extra}>"


class EngineContext:
    """Architectural state the engine exposes to predictors.

    The engine mutates this object in place each op (cheaper than
    re-creating it); predictors must not cache references to its
    fields across calls.
    """

    __slots__ = ("history32", "history", "writer_pc", "writer_seq",
                 "forwarding_store", "stalls_retirement", "rob_distance",
                 "seq", "l1_hit", "hit_level", "branch_mispredicted",
                 "store_inflight_by_pc", "store_inflight_to_addr",
                 "probe_level")

    def __init__(self) -> None:
        #: Outcomes of the last 32 branches (bit 0 = newest).
        self.history32 = 0
        #: Outcomes of the last 128 branches, for predictors (VTAGE,
        #: EVES) that fold geometric history lengths beyond 32.
        self.history = 0
        #: tuple(reg -> PC of last writer), the RAT-PC of §IV-B.
        self.writer_pc: Tuple[int, ...] = ()
        #: tuple(reg -> sequence number of last writer), -1 if none.
        self.writer_seq: Tuple[int, ...] = ()
        #: (store_seq, store_pc, store_value) of the in-flight store that
        #: would forward to the current load's address, or None.
        self.forwarding_store = None
        #: True when the current op executed within commit-width of the
        #: ROB head (the retirement-stall criticality signal).
        self.stalls_retirement = False
        #: Distance from the ROB retirement pointer at execution.
        self.rob_distance = 0
        #: Dynamic sequence number of the current op.
        self.seq = 0
        #: For loads at execution: did the access hit L1?
        self.l1_hit = True
        #: For loads at execution: the level that served it.
        self.hit_level = "L1"
        #: For control ops at execution: did the front end mispredict it?
        self.branch_mispredicted = False
        #: Callable(store_pc) -> (seq, value, complete) for the newest
        #: in-flight store from that PC, or None — the MR Value File tap.
        self.store_inflight_by_pc = lambda pc: None
        #: Callable(addr) -> (seq, pc, value, complete) for the newest
        #: in-flight store to that (8-byte aligned) address, or None —
        #: the DLVP conflicting-store check.
        self.store_inflight_to_addr = lambda addr: None
        #: Callable(addr) -> cache level ("L1"/"L2"/"LLC"/"DRAM") that
        #: would serve the address right now, without disturbing cache
        #: state.  DLVP's front-end early read can only source levels
        #: close enough to fetch (L1/L2).
        self.probe_level = lambda addr: "DRAM"


class ValuePredictor:
    """Base class; the default implementation predicts nothing.

    Lifecycle
    ---------
    A predictor instance belongs to exactly **one** simulation.  The
    campaign engine (:mod:`repro.experiments.campaign`) marks each
    instance when a job consumes it and raises if a spec hands the same
    instance to a second job — learned state leaking between runs
    would silently corrupt a campaign.  :meth:`reset` is the escape
    hatch: it returns the predictor to a just-constructed state and
    clears the engine's reuse marker, for interactive use and tests
    that deliberately rerun one instance.

    Every subclass supports :meth:`reset` without writing any code:
    the base class records each instance's constructor arguments (see
    ``__init_subclass__``) and ``reset`` replays the constructor, so
    post-reset state is *defined* to equal fresh-construction state
    (asserted over the whole registry in
    ``tests/test_predictor_reset.py``).
    """

    #: Short identifier used in result tables.
    name = "none"

    #: Declare False when the predictor never reads the per-op
    #: criticality context (``ctx.rob_distance``,
    #: ``ctx.stalls_retirement``, ``ctx.l1_hit``, ``ctx.hit_level``).
    #: The engine's fast path then skips computing them — the ROB-head
    #: bisect in particular is measurable per-op work.  The default is
    #: conservative: unless a predictor opts out, the fields are always
    #: valid in :meth:`train_execute`.  Wrappers that delegate to
    #: component predictors must OR their components' flags.
    needs_criticality = True

    #: Set by the campaign engine when a job consumes this instance.
    _claimed_by_job = False

    def __init_subclass__(cls, **kwargs) -> None:
        """Wrap the subclass's own ``__init__`` to remember the
        arguments it was constructed with.  The outermost constructor
        records last, so ``_ctor_args`` always reflects the arguments
        of the instance's actual class."""
        super().__init_subclass__(**kwargs)
        init = cls.__dict__.get("__init__")
        if init is None or getattr(init, "_records_ctor_args", False):
            return

        import functools

        @functools.wraps(init)
        def recording_init(self, *args, **kw):
            """Record ctor args (for worker-process rebuilds), then init."""
            init(self, *args, **kw)
            self._ctor_args = (args, kw)

        recording_init._records_ctor_args = True
        cls.__init__ = recording_init

    def reset(self) -> None:
        """Restore the just-constructed state by replaying the
        constructor with its recorded arguments, and clear the
        campaign engine's reuse marker.

        Composite predictors take already-built component predictors
        as constructor arguments; replaying the constructor alone
        would re-adopt them with their learned state intact, so any
        :class:`ValuePredictor` found among the recorded arguments is
        reset first.
        """
        args, kwargs = getattr(self, "_ctor_args", ((), {}))
        for argument in (*args, *kwargs.values()):
            _reset_nested(argument)
        self.__init__(*args, **kwargs)
        self._claimed_by_job = False

    def predict(self, uop: MicroOp, ctx: EngineContext) -> Optional[Prediction]:
        """Front-end lookup at allocation.  Return a prediction only at
        high confidence — mispredictions cost a 20-cycle flush."""
        return None

    def train_execute(self, uop: MicroOp, ctx: EngineContext,
                      used_prediction: Optional[Prediction],
                      correct: bool) -> None:
        """Called at the op's execution.  ``used_prediction`` is the
        Prediction the engine consumed at allocation (or ``None``) and
        ``correct`` is the validation outcome (True when unused)."""

    def on_forwarding(self, store_pc: int, load_pc: int,
                      store_seq: int) -> None:
        """LSQ store→load forwarding observed (MR's training tap)."""

    def epoch_tick(self, retired: int) -> None:
        """Called with the running retired-instruction count; predictors
        implement periodic resets (e.g. the Criticality Epoch) here."""

    def storage_bits(self) -> int:
        """Total state in bits, for Table I-style accounting."""
        return 0

    def stats(self) -> dict:
        """Optional predictor-internal statistics for reports."""
        return {}

    def publish_stats(self, group) -> None:
        """Register this predictor's statistics into a telemetry
        :class:`~repro.telemetry.stats.StatGroup`.  The default
        publishes :meth:`stats` (nested dicts become child groups);
        predictors with richer structure can override."""
        _publish_mapping(group, self.stats())
        group.counter("storage_bits", "Table-I state budget",
                      self.storage_bits())


def _reset_nested(argument) -> None:
    """Reset predictors hiding in a recorded constructor argument."""
    if isinstance(argument, ValuePredictor):
        argument.reset()
    elif isinstance(argument, (list, tuple)):
        for item in argument:
            _reset_nested(item)


def _publish_mapping(group, mapping: dict) -> None:
    """Register a (possibly nested) stats dict as counters/groups."""
    for key, value in mapping.items():
        if isinstance(value, dict):
            _publish_mapping(group.group(key), value)
        else:
            group.counter(key, value=value)


class NoPredictor(ValuePredictor):
    """Explicit baseline: value prediction disabled."""

    name = "baseline"
