"""Runtime lock-order and guard-discipline sanitizer for the service tier.

The static rules (RL008-RL010, docs/LINTING.md) prove lock discipline
from the source; this module proves it from a *running* daemon.  Behind
``REPRO_SYNC_CHECKS=1`` (registered in :mod:`repro.envreg`, zero-cost
when off — exactly the ``REPRO_CHECK_INVARIANTS`` pattern) the service
wraps its locks in :class:`CheckedLock` proxies that

* record every acquisition into a global **acquisition graph** (an edge
  ``A -> B`` means some thread acquired ``B`` while holding ``A``) and
  flag a **lock-order inversion** the moment a new acquisition would
  close a cycle — the deadlock that has not happened *yet*;
* track per-thread held sets so :func:`guard_instance` can verify every
  access to a ``_GUARDED``-declared attribute happens with its guard
  lock held — the runtime half of RL008.

On violation the sanitizer dumps a report (held locks, the offending
edge, the acquisition graph, the stack) to stderr, records it for
:func:`reports`, and raises :class:`~repro.errors.SyncViolation` so the
chaos matrix fails loudly instead of deadlocking quietly.

When ``REPRO_SYNC_CHECKS`` is unset, :func:`wrap_lock` returns the raw
lock unchanged and :func:`guard_instance` is a no-op — the service pays
nothing (``repro bench --check`` gates on exactly that).

The lock hierarchy the service declares (docs/SERVICE.md §Locking)::

    daemon._cleanup_lock  ->  board._lock  ->  wal._lock

with ``daemon._stats_lock`` and ``daemon._conns_lock`` as leaves that
never nest around another service lock.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from typing import Any, Dict, List, Optional, Set

from repro.errors import SyncViolation

#: The opt-in flag; anything but ""/"0" enables the sanitizer.
ENV_FLAG = "REPRO_SYNC_CHECKS"


def enabled() -> bool:
    """Whether the sanitizer is armed (``REPRO_SYNC_CHECKS=1``)."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


# ----------------------------------------------------------------------
# Global sanitizer state.  ``_meta`` guards the graph and the report
# log; it is only ever held for dict bookkeeping, never while acquiring
# a monitored lock, so it cannot participate in an inversion itself.
# ----------------------------------------------------------------------
_meta = threading.Lock()
#: Acquisition graph: edge A -> B when B was acquired while A was held.
_edges: Dict[str, Set[str]] = {}
#: Formatted violation reports, in order of occurrence.
_reports: List[str] = []
_acquisitions = 0
_wrapped = 0
_tls = threading.local()


def _held_stack() -> List["CheckedLock"]:
    stack: Optional[List[CheckedLock]] = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def _find_path(src: str, dst: str) -> Optional[List[str]]:
    """A path ``src -> ... -> dst`` through the acquisition graph
    (BFS under ``_meta``), or ``None``."""
    with _meta:
        parents: Dict[str, str] = {}
        frontier = [src]
        seen = {src}
        while frontier:
            node = frontier.pop(0)
            for succ in sorted(_edges.get(node, ())):
                if succ in seen:
                    continue
                parents[succ] = node
                if succ == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(succ)
                frontier.append(succ)
    return None


def _graph_snapshot() -> List[str]:
    with _meta:
        return [f"    {src} -> {dst}"
                for src in sorted(_edges)
                for dst in sorted(_edges[src])]


def _violate(kind: str, detail: str) -> None:
    """Record, dump, and raise one sanitizer violation."""
    held = ", ".join(lock.name for lock in _held_stack()) or "(none)"
    lines = [
        f"REPRO_SYNC_CHECKS violation [{kind}] "
        f"in thread {threading.current_thread().name!r}:",
        f"  {detail}",
        f"  locks held: {held}",
        "  acquisition graph:",
    ]
    lines.extend(_graph_snapshot() or ["    (empty)"])
    lines.append("  stack:")
    lines.extend("    " + entry.rstrip() for entry
                 in traceback.format_stack()[:-2])
    report = "\n".join(lines)
    with _meta:
        _reports.append(report)
    sys.stderr.write(report + "\n")
    raise SyncViolation(f"{kind}: {detail}")


# ----------------------------------------------------------------------
# The order-recording lock proxy.
# ----------------------------------------------------------------------
class CheckedLock:
    """A lock proxy that records acquisition order and ownership.

    Duck-compatible with ``threading.Lock`` — including the private
    ``_is_owned`` probe ``threading.Condition`` looks for, so a
    ``Condition(CheckedLock(...))`` works exactly like one built on a
    raw lock (``wait`` releases/re-acquires through the proxy and the
    bookkeeping follows).
    """

    def __init__(self, inner: Any, name: str) -> None:
        self._inner = inner
        self.name = name

    def _note_intent(self, check_order: bool) -> None:
        """Record would-be edges (held -> self) and, for blocking
        acquires, refuse an acquisition that closes a cycle."""
        global _acquisitions
        held = [lock.name for lock in _held_stack()
                if lock.name != self.name]
        if check_order:
            for name in held:
                path = _find_path(self.name, name)
                if path is not None:
                    _violate(
                        "lock-order-inversion",
                        f"acquiring {self.name!r} while holding "
                        f"{name!r}, but the recorded order is "
                        f"{' -> '.join(path)}")
        with _meta:
            _acquisitions += 1
            for name in held:
                _edges.setdefault(name, set()).add(self.name)

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        self._note_intent(check_order=blocking)
        got = self._inner.acquire(blocking, timeout)
        if got:
            _held_stack().append(self)
        return got

    def release(self) -> None:
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def _is_owned(self) -> bool:
        """Whether the *current thread* holds this lock (the probe
        ``threading.Condition`` uses before wait/notify)."""
        return any(lock is self for lock in _held_stack())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"CheckedLock({self.name!r})"


def wrap_lock(lock: Any, name: str) -> Any:
    """``lock`` itself when the sanitizer is off (zero cost), else a
    :class:`CheckedLock` proxy registered under ``name``."""
    global _wrapped
    if not enabled():
        return lock
    with _meta:
        _wrapped += 1
    return CheckedLock(lock, name)


# ----------------------------------------------------------------------
# Guarded-attribute enforcement (the runtime half of RL008).
# ----------------------------------------------------------------------
_checked_classes: Dict[type, type] = {}


def _guard_table(cls: type) -> Dict[str, str]:
    """The merged ``_GUARDED`` attribute -> lock-name table down the
    MRO (derived classes may extend their base's table)."""
    guarded: Dict[str, str] = {}
    for klass in reversed(cls.__mro__):
        table = klass.__dict__.get("_GUARDED")
        if isinstance(table, dict):
            guarded.update(table)
    return guarded


def _checked_class(cls: type, guarded: Dict[str, str]) -> type:
    cached = _checked_classes.get(cls)
    if cached is not None:
        return cached

    def _check(self: Any, attr: str) -> None:
        lock = object.__getattribute__(self, guarded[attr])
        if isinstance(lock, CheckedLock) and not lock._is_owned():
            _violate(
                "unguarded-access",
                f"{cls.__name__}.{attr} accessed without "
                f"{guarded[attr]!r} held (declared in "
                f"{cls.__name__}._GUARDED)")

    def __getattribute__(self: Any, attr: str) -> Any:
        if attr in guarded:
            _check(self, attr)
        return object.__getattribute__(self, attr)

    def __setattr__(self: Any, attr: str, value: Any) -> None:
        if attr in guarded:
            _check(self, attr)
        object.__setattr__(self, attr, value)

    checked = type(cls.__name__, (cls,), {
        "__getattribute__": __getattribute__,
        "__setattr__": __setattr__,
        "__module__": cls.__module__,
    })
    _checked_classes[cls] = checked
    return checked


def guard_instance(obj: Any) -> Any:
    """Arm runtime guard checks on ``obj`` (a no-op when the sanitizer
    is off, or when its class declares no ``_GUARDED`` table).

    Swaps the instance's class for a generated subclass whose attribute
    access consults the same ``_GUARDED`` table the static RL008 rule
    reads, against the current thread's held-lock set.  Call it at the
    *end* of ``__init__`` — construction happens before sharing, so
    the constructor itself is exempt (mirroring RL008)."""
    if not enabled():
        return obj
    guarded = _guard_table(type(obj))
    if not guarded:
        return obj
    obj.__class__ = _checked_class(type(obj), guarded)
    return obj


# ----------------------------------------------------------------------
# Introspection for tests and telemetry.
# ----------------------------------------------------------------------
def reports() -> List[str]:
    """Violation reports recorded so far (formatted strings)."""
    with _meta:
        return list(_reports)


def counters() -> Dict[str, int]:
    """Sanitizer telemetry for the ``service.sync`` stats group."""
    with _meta:
        return {"enabled": int(enabled()), "locks": _wrapped,
                "acquisitions": _acquisitions,
                "violations": len(_reports)}


def reset() -> None:
    """Clear the graph, reports, and counters (test isolation)."""
    global _acquisitions, _wrapped
    with _meta:
        _edges.clear()
        _reports.clear()
        _acquisitions = 0
        _wrapped = 0


__all__ = [
    "CheckedLock",
    "ENV_FLAG",
    "counters",
    "enabled",
    "guard_instance",
    "reports",
    "reset",
    "wrap_lock",
]
