"""Deterministic fault injection for the campaign fault-tolerance layer.

The harness makes worker crashes, hangs, transient exceptions, and torn
cache writes *reproducible*, so the watchdog/retry/quarantine machinery
is testable in CI without races or real flakiness.

A fault plan is a list of :class:`FaultSpec` records serialised as JSON
into the ``REPRO_FAULTS`` environment variable — the environment is the
only channel that reaches worker processes, whichever start method the
pool uses.  Each spec matches jobs by a substring of their
``workload/core/predictor`` label and fires on the first ``times``
*attempts* of every matching job:

* ``crash`` — the worker exits hard (``os._exit``) without reporting,
  modelling an OOM kill or segfault (→ :class:`~repro.errors.WorkerCrash`).
* ``hang``  — the worker sleeps ``seconds``, modelling a livelock
  (→ :class:`~repro.errors.JobTimeout` once the watchdog fires).
* ``raise`` — the worker raises :class:`~repro.errors.TransientError`,
  modelling a flaky dependency (retried by policy).
* ``torn-write`` — the *cache* writes a truncated JSON payload,
  modelling a write torn by a crash or a non-atomic legacy writer
  (→ :class:`~repro.errors.CacheCorruption` quarantine on next read).

Injection decisions for crash/hang/raise are pure functions of
``(label, attempt)`` — the engine passes the attempt number into the
worker, so no cross-process shared state is needed and every retry
sequence is deterministic.  Torn writes count down in-process (cache
writes always happen in the campaign's own process).

Example::

    from repro.testing import faults
    plan = [faults.FaultSpec(kind="hang", match="astar/", times=1,
                             seconds=30.0)]
    with faults.installed(plan):
        engine.run_jobs(jobs)   # first attempt at astar hangs
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ConfigError, TransientError

#: Environment variable carrying the serialised fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Process exit status used by injected worker crashes.
CRASH_EXIT_CODE = 23

KINDS = ("crash", "hang", "raise", "torn-write")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` fired on the first ``times``
    attempts of every job whose label contains ``match``."""

    kind: str
    match: str = ""
    times: int = 1
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {KINDS}")
        if self.times < 1:
            raise ConfigError(f"times must be >= 1, got {self.times}")


def encode(specs: Sequence[FaultSpec]) -> str:
    """Serialise a fault plan for the ``REPRO_FAULTS`` environment."""
    return json.dumps([asdict(spec) for spec in specs])


def decode(text: str) -> List[FaultSpec]:
    """Inverse of :func:`encode`; raises :class:`ValueError` on junk."""
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise ValueError(f"fault plan must be a JSON list, got {payload!r}")
    return [FaultSpec(**entry) for entry in payload]


def active_plan(environ: Optional[Dict[str, str]] = None) -> List[FaultSpec]:
    """The currently installed fault plan ([] when none)."""
    env = os.environ if environ is None else environ
    text = env.get(FAULTS_ENV)
    if not text:
        return []
    return decode(text)


@contextlib.contextmanager
def installed(specs: Sequence[FaultSpec]) -> Iterator[None]:
    """Install a fault plan into ``os.environ`` for the duration of the
    block (and reset torn-write countdowns on entry and exit)."""
    previous = os.environ.get(FAULTS_ENV)
    os.environ[FAULTS_ENV] = encode(specs)
    reset()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = previous
        reset()


# ----------------------------------------------------------------------
# Injection points.
# ----------------------------------------------------------------------
def inject_job_faults(label: str, attempt: int) -> None:
    """Fire any crash/hang/raise fault matching ``label`` on this
    ``attempt`` (1-based).  Called at the top of job execution; a no-op
    without an installed plan."""
    for spec in active_plan():
        if spec.match not in label or attempt > spec.times:
            continue
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if spec.kind == "hang":
            time.sleep(spec.seconds)
        if spec.kind == "raise":
            raise TransientError(
                f"injected transient fault for {label} "
                f"(attempt {attempt}/{spec.times})")


#: In-process torn-write countdowns, keyed by spec identity.
_torn_remaining: Dict[FaultSpec, int] = {}


def tear_write(label: str) -> bool:
    """Whether the next cache write for ``label`` should be torn
    (truncated mid-payload).  Counts down ``times`` per spec."""
    for spec in active_plan():
        if spec.kind != "torn-write" or spec.match not in label:
            continue
        left = _torn_remaining.setdefault(spec, spec.times)
        if left > 0:
            _torn_remaining[spec] = left - 1
            return True
    return False


def reset() -> None:
    """Clear in-process fault state (torn-write countdowns)."""
    _torn_remaining.clear()


__all__ = [
    "CRASH_EXIT_CODE",
    "FAULTS_ENV",
    "FaultSpec",
    "KINDS",
    "active_plan",
    "decode",
    "encode",
    "inject_job_faults",
    "installed",
    "reset",
    "tear_write",
]
