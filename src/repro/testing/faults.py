"""Deterministic fault injection for the campaign fault-tolerance layer.

The harness makes worker crashes, hangs, transient exceptions, and torn
cache writes *reproducible*, so the watchdog/retry/quarantine machinery
is testable in CI without races or real flakiness.

A fault plan is a list of :class:`FaultSpec` records serialised as JSON
into the ``REPRO_FAULTS`` environment variable — the environment is the
only channel that reaches worker processes, whichever start method the
pool uses.  Each spec matches jobs by a substring of their
``workload/core/predictor`` label and fires on the first ``times``
*attempts* of every matching job:

* ``crash`` — the worker exits hard (``os._exit``) without reporting,
  modelling an OOM kill or segfault (→ :class:`~repro.errors.WorkerCrash`).
* ``hang``  — the worker sleeps ``seconds``, modelling a livelock
  (→ :class:`~repro.errors.JobTimeout` once the watchdog fires).
* ``raise`` — the worker raises :class:`~repro.errors.TransientError`,
  modelling a flaky dependency (retried by policy).
* ``torn-write`` — the *cache* writes a truncated JSON payload,
  modelling a write torn by a crash or a non-atomic legacy writer
  (→ :class:`~repro.errors.CacheCorruption` quarantine on next read).

PR 9 adds the *service-tier* fault points driven by the same plan
(docs/SERVICE.md, docs/ROBUSTNESS.md):

* ``wal-crash`` — the daemon dies hard (``os._exit``) immediately
  *before* appending a matching write-ahead-log record, modelling a
  SIGKILL between journal appends ("mid-journal").
* ``wal-torn`` — the daemon writes only half of a matching WAL record
  and then dies hard, modelling a write torn by the crash itself; the
  recovery replay must drop the torn tail and requeue.
* ``frame-drop`` — the daemon truncates a matching wire frame
  mid-write and severs the connection, modelling a dropped TCP/unix
  stream; clients must reconnect and resume from their journal cursor.

WAL fault points match on record labels like ``"submit S0001"`` or
``"event done astar/skylake/fvp"``; frame drops match on stream labels
like ``"job done astar/skylake/fvp"``.

Injection decisions for crash/hang/raise are pure functions of
``(label, attempt)`` — the engine passes the attempt number into the
worker, so no cross-process shared state is needed and every retry
sequence is deterministic.  Torn writes, WAL faults, and frame drops
count down in-process (they always fire in the owning process).

Example::

    from repro.testing import faults
    plan = [faults.FaultSpec(kind="hang", match="astar/", times=1,
                             seconds=30.0)]
    with faults.installed(plan):
        engine.run_jobs(jobs)   # first attempt at astar hangs
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ConfigError, TransientError

#: Environment variable carrying the serialised fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Process exit status used by injected worker crashes.
CRASH_EXIT_CODE = 23

KINDS = ("crash", "hang", "raise", "torn-write",
         "wal-crash", "wal-torn", "frame-drop")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` fired on the first ``times``
    attempts of every job whose label contains ``match``."""

    kind: str
    match: str = ""
    times: int = 1
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {KINDS}")
        if self.times < 1:
            raise ConfigError(f"times must be >= 1, got {self.times}")


def encode(specs: Sequence[FaultSpec]) -> str:
    """Serialise a fault plan for the ``REPRO_FAULTS`` environment."""
    return json.dumps([asdict(spec) for spec in specs])


def decode(text: str) -> List[FaultSpec]:
    """Inverse of :func:`encode`; raises :class:`ValueError` on junk."""
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise ValueError(f"fault plan must be a JSON list, got {payload!r}")
    return [FaultSpec(**entry) for entry in payload]


def active_plan(environ: Optional[Dict[str, str]] = None) -> List[FaultSpec]:
    """The currently installed fault plan ([] when none)."""
    env = os.environ if environ is None else environ
    text = env.get(FAULTS_ENV)
    if not text:
        return []
    return decode(text)


@contextlib.contextmanager
def installed(specs: Sequence[FaultSpec]) -> Iterator[None]:
    """Install a fault plan into ``os.environ`` for the duration of the
    block (and reset torn-write countdowns on entry and exit)."""
    previous = os.environ.get(FAULTS_ENV)
    os.environ[FAULTS_ENV] = encode(specs)
    reset()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = previous
        reset()


# ----------------------------------------------------------------------
# Injection points.
# ----------------------------------------------------------------------
def inject_job_faults(label: str, attempt: int) -> None:
    """Fire any crash/hang/raise fault matching ``label`` on this
    ``attempt`` (1-based).  Called at the top of job execution; a no-op
    without an installed plan."""
    for spec in active_plan():
        if spec.match not in label or attempt > spec.times:
            continue
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if spec.kind == "hang":
            time.sleep(spec.seconds)
        if spec.kind == "raise":
            raise TransientError(
                f"injected transient fault for {label} "
                f"(attempt {attempt}/{spec.times})")


#: In-process fault countdowns, keyed by spec identity (shared by
#: torn-write, wal-*, and frame-drop faults — each spec fires at most
#: ``times`` times per process).
_torn_remaining: Dict[FaultSpec, int] = {}


def _countdown(kinds: Sequence[str], label: str) -> Optional[str]:
    """Fire the first armed spec of one of ``kinds`` matching
    ``label``, decrementing its in-process countdown; returns the
    fired kind or ``None``."""
    for spec in active_plan():
        if spec.kind not in kinds or spec.match not in label:
            continue
        left = _torn_remaining.setdefault(spec, spec.times)
        if left > 0:
            _torn_remaining[spec] = left - 1
            return spec.kind
    return None


def tear_write(label: str) -> bool:
    """Whether the next cache write for ``label`` should be torn
    (truncated mid-payload).  Counts down ``times`` per spec."""
    return _countdown(("torn-write",), label) == "torn-write"


def wal_fault(label: str) -> Optional[str]:
    """The WAL fault armed for this append, if any: ``"wal-crash"``
    (die before writing), ``"wal-torn"`` (write half, then die), or
    ``None``.  ``label`` is the record label, e.g. ``"submit S0001"``
    or ``"event done astar/skylake/fvp"``."""
    return _countdown(("wal-crash", "wal-torn"), label)


def drop_frame(label: str) -> bool:
    """Whether the daemon should truncate this wire frame and sever
    the connection.  ``label`` names the frame, e.g.
    ``"job done astar/skylake/fvp"`` or ``"complete S0001"``."""
    return _countdown(("frame-drop",), label) == "frame-drop"


def reset() -> None:
    """Clear in-process fault state (injection countdowns)."""
    _torn_remaining.clear()


@contextlib.contextmanager
def slow_loris(path: str, interval: float = 0.2) -> Iterator[socket.socket]:
    """Hold a half-open connection to the service socket, trickling a
    valid ``ping`` frame one byte at a time and never sending the
    terminating newline — the classic slow-loris probe.

    Used by the service chaos tests to prove one stuck client can
    neither wedge the daemon's other connections nor block its
    shutdown (the daemon's bounded frame reads cap the damage)."""
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.connect(path)
    payload = b'{"op":"ping","v":1}\n'
    stop = threading.Event()

    def _trickle() -> None:
        for index in range(len(payload) - 1):  # withhold the newline
            if stop.wait(interval):
                return
            try:
                conn.sendall(payload[index:index + 1])
            except OSError:
                return

    # daemon-thread: joined in the finally below; daemonized so an
    # interrupted test cannot leak a trickling thread past exit.
    thread = threading.Thread(target=_trickle, daemon=True)
    thread.start()
    try:
        yield conn
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        thread.join(timeout=2.0)


__all__ = [
    "CRASH_EXIT_CODE",
    "FAULTS_ENV",
    "FaultSpec",
    "KINDS",
    "active_plan",
    "decode",
    "drop_frame",
    "encode",
    "inject_job_faults",
    "installed",
    "reset",
    "slow_loris",
    "tear_write",
    "wal_fault",
]
