"""Test support: deterministic fault injection (:mod:`repro.testing.faults`)."""
