"""Test support: deterministic fault injection
(:mod:`repro.testing.faults`) and the runtime lock sanitizer
(:mod:`repro.testing.synccheck`, armed by ``REPRO_SYNC_CHECKS=1``)."""
