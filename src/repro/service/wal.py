"""Write-ahead log for the campaign service job board.

The daemon's :class:`~repro.service.board.JobBoard` is an in-memory
structure; this module makes it durable (docs/SERVICE.md §Durability).
Every state change — a submission accepted, a job started, completed,
or failed — is appended to an append-only, fsync'd log *before* the
in-memory mutation, so a daemon killed at any instant can rebuild the
board on restart: queue order, priorities, in-flight records, and the
event journals watchers replay from their cursors.

Format
------
One record per line::

    crc32(payload):08x SPACE payload(JSON, compact) NEWLINE

The CRC makes torn writes (a crash mid-append) self-describing: replay
stops at the first record that fails the checksum, misses its newline,
or does not parse — everything before it is trusted, everything after
it is discarded and counted as torn.  That is safe because the board's
recovery requeues any job without a journaled terminal event, and the
on-disk :class:`~repro.experiments.campaign.ResultCache` dedups the
re-run, so a lost suffix costs wall-clock, never correctness.

Record types (the ``"t"`` field):

``submit``  incremental: one accepted submission (sid, priority, wire jobs)
``event``   incremental: one engine event applied to a record (key,
            status, elapsed, error) — result payloads are *not* logged;
            recovery rehydrates them from the result cache by key
``seal``    marker appended on clean shutdown (recovery counts zero
            requeues after a seal)
``seq``, ``rec``, ``sub``, ``queue``
            snapshot records written by :meth:`WriteAheadLog.compact`:
            a direct dump of live board state that replaces the full
            incremental history (old segments are deleted)

Segments are ``segment-NNNNNN.wal`` under ``<cache>/wal/``; compaction
writes the snapshot to a ``.tmp``, fsyncs, renames it into place as the
next segment, then unlinks the older ones — crash-safe at every step
(a leftover ``.tmp`` is garbage that ``repro doctor --fix`` sweeps).

The same directory holds two sidecar files (atomic tmp+rename, never
appended): ``heartbeat.json``, rewritten about once a second by the
daemon so ``repro doctor`` can tell a wedged daemon from a busy one
(and a crashed one from a stopped one — clean shutdown removes it),
and ``recovery.json``, the stats of the last crash recovery.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.testing import faults, synccheck

#: Subdirectory of the cache dir holding the log and sidecar files.
WAL_DIRNAME = "wal"

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".wal"

#: Sidecar written ~1/s by a live daemon, removed on clean shutdown.
HEARTBEAT_NAME = "heartbeat.json"

#: Sidecar recording the stats of the daemon's last startup recovery.
RECOVERY_NAME = "recovery.json"


# ----------------------------------------------------------------------
# Record encoding.
# ----------------------------------------------------------------------
def encode_record(record: Dict[str, Any]) -> bytes:
    """One WAL line: crc-prefixed compact JSON, newline-terminated."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(payload), payload)


def decode_record(line: bytes) -> Optional[Dict[str, Any]]:
    """Inverse of :func:`encode_record`; ``None`` for a torn or
    corrupt line (missing newline, bad CRC, unparseable payload)."""
    if not line.endswith(b"\n") or len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        want = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:-1]
    if zlib.crc32(payload) != want:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def fault_label(record: Dict[str, Any]) -> str:
    """The label WAL fault points match on, e.g. ``"submit S0001"`` or
    ``"event done astar/skylake/fvp"``."""
    parts = [str(record.get("t", ""))]
    for name in ("status", "sid", "label"):
        value = record.get(name)
        if value:
            parts.append(str(value))
    return " ".join(parts)


# ----------------------------------------------------------------------
# The log.
# ----------------------------------------------------------------------
class WriteAheadLog:
    """Append-only, fsync'd, torn-write-tolerant record log.

    Appends arrive from both the scheduler (engine events) and handler
    threads (submits), and the daemon's stats op reads the counters
    concurrently, so the handle and counters live under ``_lock`` —
    the innermost lock of the service hierarchy (docs/SERVICE.md
    §Locking): it is only ever taken last and never held across a call
    back into the board or daemon."""

    #: Attribute guard map enforced by RL008 and, under
    #: ``REPRO_SYNC_CHECKS=1``, at runtime by repro.testing.synccheck.
    _GUARDED = {
        "_handle": "_lock",
        "appends": "_lock",
        "bytes_written": "_lock",
        "compactions": "_lock",
    }

    def __init__(self, root: str, fsync: bool = True) -> None:
        self.root = root
        self._fsync = fsync
        self._lock = synccheck.wrap_lock(threading.Lock(), "wal._lock")
        self._handle: Optional[Any] = None
        self.appends = 0
        self.bytes_written = 0
        self.compactions = 0
        os.makedirs(root, exist_ok=True)
        synccheck.guard_instance(self)

    # -- segment bookkeeping -------------------------------------------
    def segment_paths(self) -> List[str]:
        """Existing segment files, oldest first."""
        return segment_paths(self.root)

    def _segment_path(self, seq: int) -> str:
        return os.path.join(self.root,
                            f"{SEGMENT_PREFIX}{seq:06d}{SEGMENT_SUFFIX}")

    def _active_path(self) -> str:
        existing = self.segment_paths()
        return existing[-1] if existing else self._segment_path(1)

    def segments(self) -> int:
        """Number of segment files on disk."""
        return len(self.segment_paths())

    # -- append --------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (write + flush + fsync).

        Service-tier fault points fire here: ``wal-crash`` kills the
        process *before* the write, ``wal-torn`` writes half the
        record and then kills the process — both model a SIGKILL
        landing mid-journal (docs/ROBUSTNESS.md)."""
        line = encode_record(record)
        with self._lock:
            if os.environ.get(faults.FAULTS_ENV):
                action = faults.wal_fault(fault_label(record))
                if action == "wal-crash":
                    os._exit(faults.CRASH_EXIT_CODE)
                if action == "wal-torn":
                    handle = self._open()
                    handle.write(line[:max(1, len(line) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    os._exit(faults.CRASH_EXIT_CODE)
            handle = self._open()
            handle.write(line)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
            self.appends += 1
            self.bytes_written += len(line)

    def _open(self) -> Any:
        """The active segment handle, opened lazily (lock held)."""
        if self._handle is None:
            self._handle = open(self._active_path(), "ab")
        return self._handle

    # -- replay --------------------------------------------------------
    def replay(self) -> Tuple[List[Dict[str, Any]], int]:
        """All trusted records, oldest first, plus the torn count.

        Replay stops entirely at the first torn/corrupt record: later
        records (even in later segments) may depend on the lost ones,
        and requeue-plus-cache-dedup makes dropping them safe where
        applying them out of context would not be."""
        return replay_segments(self.root)

    # -- compaction ----------------------------------------------------
    def compact(self, records: List[Dict[str, Any]]) -> None:
        """Replace the full history with a snapshot.

        Writes ``records`` to a ``.tmp``, fsyncs, renames it into
        place as the next segment, then unlinks every older segment.
        A crash before the rename leaves the old history authoritative;
        a crash after it leaves at worst stale segments that the next
        compaction (or ``repro doctor --fix``) removes."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            existing = self.segment_paths()
            next_seq = _segment_seq(existing[-1]) + 1 if existing else 1
            final = self._segment_path(next_seq)
            tmp = final + ".tmp"
            with open(tmp, "wb") as handle:
                for record in records:
                    handle.write(encode_record(record))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
            for path in existing:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self.compactions += 1

    # -- lifecycle -----------------------------------------------------
    def seal(self) -> None:
        """Append the clean-shutdown marker."""
        self.append({"t": "seal"})

    def close(self) -> None:
        """Close the active segment handle."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- introspection -------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """A consistent snapshot of the append/compaction counters
        (the daemon's ``stats`` op reads these while the scheduler
        appends, so the read takes the same lock the writers do)."""
        with self._lock:
            return {"appends": self.appends,
                    "bytes": self.bytes_written,
                    "compactions": self.compactions}


# ----------------------------------------------------------------------
# Module-level readers (used by the daemon, doctor, and tests — none
# of them need a live handle).
# ----------------------------------------------------------------------
def _segment_seq(path: str) -> int:
    stem = os.path.basename(path)
    return int(stem[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])


def segment_paths(root: str) -> List[str]:
    """Segment files under ``root``, oldest first ([] if none)."""
    if not os.path.isdir(root):
        return []
    names = [name for name in os.listdir(root)
             if name.startswith(SEGMENT_PREFIX)
             and name.endswith(SEGMENT_SUFFIX)]
    return [os.path.join(root, name) for name in sorted(names)]


def replay_segments(root: str) -> Tuple[List[Dict[str, Any]], int]:
    """Read-only replay of every segment under ``root``; see
    :meth:`WriteAheadLog.replay` for the torn-stop contract."""
    records: List[Dict[str, Any]] = []
    torn = 0
    for path in segment_paths(root):
        broken = False
        try:
            with open(path, "rb") as handle:
                for line in handle:
                    record = decode_record(line)
                    if record is None:
                        torn += 1
                        broken = True
                        break
                    records.append(record)
        except OSError:
            torn += 1
            broken = True
        if broken:
            break
    return records, torn


def orphan_files(root: str) -> List[str]:
    """Leftover compaction temporaries (``*.tmp``) under ``root``."""
    if not os.path.isdir(root):
        return []
    return [os.path.join(root, name) for name in sorted(os.listdir(root))
            if name.endswith(".tmp")]


def corrupt_segments(root: str) -> List[str]:
    """Non-empty segments with *zero* decodable records — nothing to
    recover, safe for ``repro doctor --fix`` to remove.  A segment
    with a merely torn tail still holds live queue state and is *not*
    reported."""
    bad: List[str] = []
    for path in segment_paths(root):
        try:
            if os.path.getsize(path) == 0:
                continue
            with open(path, "rb") as handle:
                decodable = any(decode_record(line) is not None
                                for line in handle)
        except OSError:
            continue
        if not decodable:
            bad.append(path)
    return bad


# ----------------------------------------------------------------------
# Sidecar files: heartbeat + last-recovery stats.
# ----------------------------------------------------------------------
def _write_sidecar(root: str, name: str, payload: Dict[str, Any]) -> None:
    os.makedirs(root, exist_ok=True)
    final = os.path.join(root, name)
    tmp = final + f".{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, final)


def _read_sidecar(root: str, name: str) -> Optional[Dict[str, Any]]:
    try:
        with open(os.path.join(root, name), encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def heartbeat_path(root: str) -> str:
    """Where the daemon's heartbeat sidecar lives."""
    return os.path.join(root, HEARTBEAT_NAME)


def write_heartbeat(root: str, payload: Dict[str, Any]) -> None:
    """Atomically rewrite the heartbeat sidecar."""
    payload = dict(payload)
    payload.setdefault("ts", time.time())
    _write_sidecar(root, HEARTBEAT_NAME, payload)


def read_heartbeat(root: str) -> Optional[Dict[str, Any]]:
    """The current heartbeat sidecar (``None`` if absent/corrupt)."""
    return _read_sidecar(root, HEARTBEAT_NAME)


def clear_heartbeat(root: str) -> None:
    """Remove the heartbeat sidecar (clean shutdown)."""
    try:
        os.unlink(heartbeat_path(root))
    except OSError:
        pass


def write_recovery(root: str, payload: Dict[str, Any]) -> None:
    """Atomically record the stats of the last startup recovery."""
    payload = dict(payload)
    payload.setdefault("ts", time.time())
    _write_sidecar(root, RECOVERY_NAME, payload)


def read_recovery(root: str) -> Optional[Dict[str, Any]]:
    """The last recovery's stats (``None`` if never recovered)."""
    return _read_sidecar(root, RECOVERY_NAME)


__all__ = [
    "HEARTBEAT_NAME",
    "RECOVERY_NAME",
    "WAL_DIRNAME",
    "WriteAheadLog",
    "clear_heartbeat",
    "corrupt_segments",
    "decode_record",
    "encode_record",
    "fault_label",
    "heartbeat_path",
    "orphan_files",
    "read_heartbeat",
    "read_recovery",
    "replay_segments",
    "segment_paths",
    "write_heartbeat",
    "write_recovery",
]
