"""Long-lived campaign service: the engine as a shared daemon.

``repro serve`` (docs/SERVICE.md) promotes the campaign engine from a
CLI batch tool to a multi-client backend: a daemon listens on a unix
socket (and, optionally, localhost HTTP), accepts sweep submissions as
JSON frames, queues them by priority, executes them through one
:class:`~repro.experiments.campaign.CampaignEngine` backed by the
shared :class:`~repro.experiments.campaign.ResultCache` tier, and
streams per-job progress back to any number of subscribed clients.

Layout
------
``protocol``
    The wire format: newline-delimited JSON frames, the request/event
    vocabulary, job (de)serialisation, and socket-path resolution.
``board``
    The job board: submissions, per-job records, dedup against
    in-flight *and* completed work, the per-submission event journals
    watchers replay, bounded queue depth (backpressure), and WAL
    snapshot/restore.
``wal``
    The write-ahead log that makes the board durable: append-only
    fsync'd records, torn-write-tolerant replay, compaction, and the
    heartbeat/recovery sidecars ``repro doctor`` reads.
``daemon``
    The server: socket lifecycle (including stale-socket takeover),
    WAL recovery on start, graceful SIGTERM drain, connection
    handling, the scheduler thread driving the engine, heartbeats,
    and ``service.*`` / ``cache.*`` telemetry.
``client``
    Blocking client helpers used by ``repro submit`` / ``watch`` /
    ``jobs`` and the test-suite — with finite default timeouts and
    cursor-resuming reconnects (bounded exponential backoff).
"""

from repro.service.board import JobBoard, JobRecord, Submission
from repro.service.wal import WriteAheadLog
from repro.service.client import (
    fetch_stats,
    list_jobs,
    ping,
    shutdown,
    submit,
    watch,
)
from repro.service.daemon import ServiceDaemon
from repro.service.protocol import (
    PROTOCOL_VERSION,
    job_from_wire,
    job_to_wire,
    socket_path,
)

__all__ = [
    "JobBoard",
    "JobRecord",
    "PROTOCOL_VERSION",
    "ServiceDaemon",
    "Submission",
    "WriteAheadLog",
    "fetch_stats",
    "job_from_wire",
    "job_to_wire",
    "list_jobs",
    "ping",
    "shutdown",
    "socket_path",
    "submit",
    "watch",
]
