"""Long-lived campaign service: the engine as a shared daemon.

``repro serve`` (docs/SERVICE.md) promotes the campaign engine from a
CLI batch tool to a multi-client backend: a daemon listens on a unix
socket (and, optionally, localhost HTTP), accepts sweep submissions as
JSON frames, queues them by priority, executes them through one
:class:`~repro.experiments.campaign.CampaignEngine` backed by the
shared :class:`~repro.experiments.campaign.ResultCache` tier, and
streams per-job progress back to any number of subscribed clients.

Layout
------
``protocol``
    The wire format: newline-delimited JSON frames, the request/event
    vocabulary, job (de)serialisation, and socket-path resolution.
``board``
    The in-memory job board: submissions, per-job records, dedup
    against in-flight *and* completed work, and the per-submission
    event journals watchers replay.
``daemon``
    The server: socket lifecycle (including stale-socket takeover),
    connection handling, the scheduler thread driving the engine, and
    ``service.*`` / ``cache.*`` telemetry.
``client``
    Blocking client helpers used by ``repro submit`` / ``watch`` /
    ``jobs`` and the test-suite.
"""

from repro.service.board import JobBoard, JobRecord, Submission
from repro.service.client import (
    fetch_stats,
    list_jobs,
    ping,
    shutdown,
    submit,
    watch,
)
from repro.service.daemon import ServiceDaemon
from repro.service.protocol import (
    PROTOCOL_VERSION,
    job_from_wire,
    job_to_wire,
    socket_path,
)

__all__ = [
    "JobBoard",
    "JobRecord",
    "PROTOCOL_VERSION",
    "ServiceDaemon",
    "Submission",
    "fetch_stats",
    "job_from_wire",
    "job_to_wire",
    "list_jobs",
    "ping",
    "shutdown",
    "socket_path",
    "submit",
    "watch",
]
