"""Blocking client helpers for the campaign service.

Thin wrappers over the socket protocol used by the ``repro submit`` /
``watch`` / ``jobs`` subcommands and the test-suite.  Every helper
connects, performs one operation, and returns plain frame dicts; a
missing or dead daemon raises
:class:`~repro.errors.ServiceUnavailable` with the socket path in the
message, and an ``error`` event from the daemon is re-raised as the
error class it names (:class:`~repro.errors.ProtocolError` for
protocol violations, :class:`~repro.errors.ServiceError` otherwise).
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import ProtocolError, ServiceError, ServiceUnavailable
from repro.experiments.campaign import Job
from repro.service.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
    job_to_wire,
    read_frames,
)


def _connect(path: str, timeout: Optional[float]) -> socket.socket:
    """Open a connection to the daemon, or raise
    :class:`ServiceUnavailable`."""
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(timeout)
    try:
        conn.connect(path)
    except OSError as exc:
        conn.close()
        raise ServiceUnavailable(
            f"no campaign service at {path} ({exc}); start one with "
            "`repro serve`") from exc
    return conn


def _raise_if_error(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a daemon ``error`` event into the exception it names."""
    if frame.get("event") == "error":
        message = str(frame.get("error"))
        if frame.get("kind") == "ProtocolError":
            raise ProtocolError(message)
        raise ServiceError(message)
    return frame


def _roundtrip(path: str, frame: Dict[str, Any],
               timeout: Optional[float]) -> Dict[str, Any]:
    """One request, one response frame."""
    conn = _connect(path, timeout)
    try:
        conn.sendall(encode_frame(frame))
        with conn.makefile("rb") as stream:
            for reply in read_frames(stream):
                return _raise_if_error(reply)
    finally:
        conn.close()
    raise ServiceUnavailable(
        f"daemon at {path} closed the connection without answering")


def ping(path: str, timeout: Optional[float] = 5.0) -> Dict[str, Any]:
    """Liveness probe; returns the ``pong`` frame."""
    return _roundtrip(path, {"v": PROTOCOL_VERSION, "op": "ping"},
                      timeout)


def list_jobs(path: str,
              timeout: Optional[float] = 5.0) -> Dict[str, Any]:
    """Queue / submission / record summary (the ``jobs`` frame)."""
    return _roundtrip(path, {"v": PROTOCOL_VERSION, "op": "jobs"},
                      timeout)


def fetch_stats(path: str,
                timeout: Optional[float] = 5.0) -> Dict[str, Any]:
    """The daemon's telemetry tree as a ``to_dict`` payload."""
    return _roundtrip(path, {"v": PROTOCOL_VERSION, "op": "stats"},
                      timeout)


def shutdown(path: str,
             timeout: Optional[float] = 5.0) -> Dict[str, Any]:
    """Ask the daemon to drain and exit; returns the ``bye`` frame."""
    return _roundtrip(path, {"v": PROTOCOL_VERSION, "op": "shutdown"},
                      timeout)


def submit(path: str, jobs: Sequence[Job], priority: int = 0,
           watch: bool = True,
           timeout: Optional[float] = None
           ) -> Iterator[Dict[str, Any]]:
    """Submit jobs; yields the ``accepted`` frame, then (with
    ``watch``) every journal event through ``complete``.

    The iterator owns the connection: consume it fully (or close the
    generator) to release the socket.  ``timeout`` bounds each frame
    *gap*, not the whole campaign — ``None`` (default) waits as long
    as the daemon keeps streaming."""
    request = {"v": PROTOCOL_VERSION, "op": "submit",
               "jobs": [job_to_wire(job) for job in jobs],
               "priority": priority, "watch": watch}
    conn = _connect(path, timeout)
    try:
        conn.sendall(encode_frame(request))
        with conn.makefile("rb") as stream:
            for frame in read_frames(stream):
                yield _raise_if_error(frame)
                if not watch and frame.get("event") == "accepted":
                    return
                if frame.get("event") == "complete":
                    return
    finally:
        conn.close()


def watch(path: str, submission_id: str,
          timeout: Optional[float] = None
          ) -> Iterator[Dict[str, Any]]:
    """Replay + follow an existing submission's journal through its
    ``complete`` frame."""
    request = {"v": PROTOCOL_VERSION, "op": "watch",
               "id": submission_id}
    conn = _connect(path, timeout)
    try:
        conn.sendall(encode_frame(request))
        with conn.makefile("rb") as stream:
            for frame in read_frames(stream):
                yield _raise_if_error(frame)
                if frame.get("event") == "complete":
                    return
    finally:
        conn.close()


def collect_results(frames: Iterator[Dict[str, Any]]
                    ) -> Dict[str, Any]:
    """Drain a :func:`submit` / :func:`watch` stream into
    ``{"accepted": ..., "complete": ..., "results": {job key:
    result}, "failures": {job key: error}}`` — the shape the CLI and
    tests consume.  Results are keyed by the content-hash job key
    (labels are not unique across trace shapes)."""
    out: Dict[str, Any] = {"accepted": None, "complete": None,
                           "results": {}, "failures": {}}
    for frame in frames:
        kind = frame.get("event")
        if kind == "accepted":
            out["accepted"] = frame
        elif kind == "complete":
            out["complete"] = frame
        elif kind == "job":
            if frame.get("status") in ("hit", "done"):
                out["results"][frame["key"]] = frame.get("result")
            elif frame.get("status") == "fail":
                out["failures"][frame["key"]] = frame.get("error")
    return out


__all__ = [
    "collect_results",
    "fetch_stats",
    "list_jobs",
    "ping",
    "shutdown",
    "submit",
    "watch",
]
