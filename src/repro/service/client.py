"""Blocking client helpers for the campaign service.

Thin wrappers over the socket protocol used by the ``repro submit`` /
``watch`` / ``jobs`` subcommands and the test-suite.  Every helper
connects, performs one operation, and returns plain frame dicts; a
missing or dead daemon raises
:class:`~repro.errors.ServiceUnavailable` with the socket path in the
message, and an ``error`` event from the daemon is re-raised as the
error class it names (:class:`~repro.errors.ProtocolError` for
protocol violations, :class:`~repro.errors.ServiceOverloaded` for
backpressure rejections, :class:`~repro.errors.ServiceError`
otherwise).

Resilience (PR 9, docs/SERVICE.md §Durability):

* No helper can hang forever by default — ``watch`` and ``shutdown``
  now carry finite default timeouts, and a socket timeout surfaces as
  a typed :class:`ServiceUnavailable`, never a raw ``socket.timeout``.
  Timeouts bound each frame *gap*, not the whole campaign; raise them
  for jobs whose single simulation outlasts the default gap.
* ``watch`` (and ``submit`` once its submission is acknowledged)
  survives a severed stream or a daemon restart: the client tracks its
  journal cursor, reconnects with bounded exponential backoff, and
  resumes the stream exactly where it broke — the board's replayable
  journals guarantee the resumed frames are the ones it would have
  seen.  Daemon-reported errors (unknown submission id, protocol
  violations) are *not* retried.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterator, Optional, Sequence

from repro.errors import (
    ProtocolError,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.experiments.campaign import Job
from repro.service.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
    job_to_wire,
    read_frames,
)

#: Default per-frame-gap timeout for ``watch`` (seconds).  Finite so a
#: dead daemon can never hang a watcher forever; large enough that any
#: sane single job completes within one gap.
DEFAULT_WATCH_TIMEOUT = 600.0

#: Default timeout for ``shutdown`` (the daemon answers ``bye`` before
#: draining, so this only needs to cover a busy accept loop).
DEFAULT_SHUTDOWN_TIMEOUT = 30.0

#: Default reconnect budget for streaming helpers: attempts, initial
#: backoff, and the backoff ceiling (seconds).
DEFAULT_RECONNECT = 5
DEFAULT_BACKOFF = 0.25
BACKOFF_CAP = 5.0

#: Daemon error-frame ``kind`` → the exception class it names.
_ERROR_KINDS = {
    "ProtocolError": ProtocolError,
    "ServiceOverloaded": ServiceOverloaded,
}


class _StreamLost(Exception):
    """Internal: the event stream broke mid-flight (connection reset,
    truncated frame, daemon restart) — retryable, unlike a
    daemon-reported error."""


def _connect(path: str, timeout: Optional[float]) -> socket.socket:
    """Open a connection to the daemon, or raise
    :class:`ServiceUnavailable`."""
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(timeout)
    try:
        conn.connect(path)
    except OSError as exc:
        conn.close()
        raise ServiceUnavailable(
            f"no campaign service at {path} ({exc}); start one with "
            "`repro serve`") from exc
    return conn


def _raise_if_error(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a daemon ``error`` event into the exception it names."""
    if frame.get("event") == "error":
        message = str(frame.get("error"))
        raise _ERROR_KINDS.get(str(frame.get("kind")),
                               ServiceError)(message)
    return frame


def _stream(conn: socket.socket, path: str) -> Iterator[Dict[str, Any]]:
    """Frames off one connection, with transport failures typed: a
    frame-gap timeout raises :class:`ServiceUnavailable`; a reset or
    truncated stream raises :class:`_StreamLost` (retryable)."""
    with conn.makefile("rb") as stream:
        frames = read_frames(stream)
        while True:
            try:
                frame = next(frames)
            except StopIteration:
                return
            except socket.timeout as exc:
                raise ServiceUnavailable(
                    f"daemon at {path} went silent past the frame-gap "
                    f"timeout ({exc})") from exc
            except ProtocolError as exc:
                # A half-written final line means the stream was
                # severed mid-frame, not that the daemon spoke junk.
                raise _StreamLost(f"stream truncated: {exc}") from exc
            except OSError as exc:
                raise _StreamLost(f"stream broke: {exc}") from exc
            yield frame


def _roundtrip(path: str, frame: Dict[str, Any],
               timeout: Optional[float]) -> Dict[str, Any]:
    """One request, one response frame."""
    conn = _connect(path, timeout)
    try:
        try:
            conn.sendall(encode_frame(frame))
            with conn.makefile("rb") as stream:
                for reply in read_frames(stream):
                    return _raise_if_error(reply)
        except socket.timeout as exc:
            raise ServiceUnavailable(
                f"daemon at {path} did not answer within the timeout "
                f"({exc})") from exc
        except ProtocolError:
            raise
        except OSError as exc:
            raise ServiceUnavailable(
                f"daemon at {path} dropped the connection "
                f"({exc})") from exc
    finally:
        conn.close()
    raise ServiceUnavailable(
        f"daemon at {path} closed the connection without answering")


def ping(path: str, timeout: Optional[float] = 5.0) -> Dict[str, Any]:
    """Liveness probe; returns the ``pong`` frame."""
    return _roundtrip(path, {"v": PROTOCOL_VERSION, "op": "ping"},
                      timeout)


def list_jobs(path: str,
              timeout: Optional[float] = 5.0) -> Dict[str, Any]:
    """Queue / submission / record summary (the ``jobs`` frame)."""
    return _roundtrip(path, {"v": PROTOCOL_VERSION, "op": "jobs"},
                      timeout)


def fetch_stats(path: str,
                timeout: Optional[float] = 5.0) -> Dict[str, Any]:
    """The daemon's telemetry tree as a ``to_dict`` payload."""
    return _roundtrip(path, {"v": PROTOCOL_VERSION, "op": "stats"},
                      timeout)


def shutdown(path: str,
             timeout: Optional[float] = DEFAULT_SHUTDOWN_TIMEOUT
             ) -> Dict[str, Any]:
    """Ask the daemon to drain and exit; returns the ``bye`` frame."""
    return _roundtrip(path, {"v": PROTOCOL_VERSION, "op": "shutdown"},
                      timeout)


def submit(path: str, jobs: Sequence[Job], priority: int = 0,
           watch: bool = True,
           timeout: Optional[float] = None,
           reconnect: int = DEFAULT_RECONNECT,
           backoff: float = DEFAULT_BACKOFF
           ) -> Iterator[Dict[str, Any]]:
    """Submit jobs; yields the ``accepted`` frame, then (with
    ``watch``) every journal event through ``complete``.

    The iterator owns the connection: consume it fully (or close the
    generator) to release the socket.  ``timeout`` bounds each frame
    *gap*, not the whole campaign — ``None`` (default) waits as long
    as the daemon keeps streaming.

    Once the submission is acknowledged its id is known, so a broken
    stream (or a daemon crash + restart) is survivable: the client
    switches to :func:`watch` and resumes from its journal cursor.  A
    failure *before* acknowledgement raises — resubmitting is the
    caller's decision, not the transport's."""
    request = {"v": PROTOCOL_VERSION, "op": "submit",
               "jobs": [job_to_wire(job) for job in jobs],
               "priority": priority, "watch": watch}
    sid: Optional[str] = None
    cursor = 0
    conn = _connect(path, timeout)
    try:
        try:
            conn.sendall(encode_frame(request))
            for frame in _stream(conn, path):
                _raise_if_error(frame)
                if frame.get("event") == "accepted":
                    sid = str(frame.get("id"))
                    yield frame
                    if not watch:
                        return
                    continue
                cursor += 1
                yield frame
                if frame.get("event") == "complete":
                    return
            if sid is None:
                raise ServiceUnavailable(
                    f"daemon at {path} closed the connection before "
                    "acknowledging the submission")
        except _StreamLost as exc:
            if sid is None:
                raise ServiceUnavailable(
                    f"submission to {path} failed before "
                    f"acknowledgement: {exc}") from exc
        except ServiceUnavailable:
            if sid is None:
                raise
    finally:
        conn.close()
    # Acknowledged but interrupted: resume the journal where it broke.
    yield from _watch_from(path, sid, cursor, timeout,
                           reconnect, backoff)


def watch(path: str, submission_id: str,
          timeout: Optional[float] = DEFAULT_WATCH_TIMEOUT,
          cursor: int = 0,
          reconnect: int = DEFAULT_RECONNECT,
          backoff: float = DEFAULT_BACKOFF
          ) -> Iterator[Dict[str, Any]]:
    """Replay + follow an existing submission's journal through its
    ``complete`` frame, starting at ``cursor``.

    Reconnects with bounded exponential backoff (``reconnect``
    attempts, ``backoff`` initial delay) when the stream breaks or
    the daemon is briefly down, resuming from the last frame seen;
    the attempt budget resets whenever a frame arrives.  Raises
    :class:`ServiceUnavailable` once the budget is exhausted."""
    yield from _watch_from(path, submission_id, cursor, timeout,
                           reconnect, backoff)


def _watch_from(path: str, submission_id: str, cursor: int,
                timeout: Optional[float], reconnect: int,
                backoff: float) -> Iterator[Dict[str, Any]]:
    attempt = 0
    while True:
        try:
            conn = _connect(path, timeout)
            try:
                conn.sendall(encode_frame(
                    {"v": PROTOCOL_VERSION, "op": "watch",
                     "id": submission_id, "cursor": cursor}))
                for frame in _stream(conn, path):
                    _raise_if_error(frame)
                    attempt = 0
                    cursor += 1
                    yield frame
                    if frame.get("event") == "complete":
                        return
            finally:
                conn.close()
            raise _StreamLost(
                "stream ended before the complete frame")
        except (_StreamLost, ServiceUnavailable) as exc:
            attempt += 1
            if attempt > reconnect:
                if isinstance(exc, ServiceUnavailable):
                    raise
                raise ServiceUnavailable(
                    f"watch of {submission_id} on {path} failed after "
                    f"{reconnect} reconnect attempts: {exc}") from exc
            time.sleep(min(backoff * (2 ** (attempt - 1)),
                           BACKOFF_CAP))


def collect_results(frames: Iterator[Dict[str, Any]]
                    ) -> Dict[str, Any]:
    """Drain a :func:`submit` / :func:`watch` stream into
    ``{"accepted": ..., "complete": ..., "results": {job key:
    result}, "failures": {job key: error}}`` — the shape the CLI and
    tests consume.  Results are keyed by the content-hash job key
    (labels are not unique across trace shapes)."""
    out: Dict[str, Any] = {"accepted": None, "complete": None,
                           "results": {}, "failures": {}}
    for frame in frames:
        kind = frame.get("event")
        if kind == "accepted":
            out["accepted"] = frame
        elif kind == "complete":
            out["complete"] = frame
        elif kind == "job":
            if frame.get("status") in ("hit", "done"):
                out["results"][frame["key"]] = frame.get("result")
            elif frame.get("status") == "fail":
                out["failures"][frame["key"]] = frame.get("error")
    return out


__all__ = [
    "BACKOFF_CAP",
    "DEFAULT_BACKOFF",
    "DEFAULT_RECONNECT",
    "DEFAULT_SHUTDOWN_TIMEOUT",
    "DEFAULT_WATCH_TIMEOUT",
    "collect_results",
    "fetch_stats",
    "list_jobs",
    "ping",
    "shutdown",
    "submit",
    "watch",
]
