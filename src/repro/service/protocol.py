"""Wire protocol for the campaign service (docs/SERVICE.md).

Everything on the socket is a *frame*: one JSON object per line, UTF-8
encoded — trivially debuggable with ``nc -U`` and greppable in logs.
Requests carry ``{"v": PROTOCOL_VERSION, "op": <verb>, ...}``; the
daemon answers with event frames ``{"event": <kind>, ...}``.  A
malformed line, an unknown op, or a version the daemon does not speak
raises :class:`~repro.errors.ProtocolError` (reported to the offending
client as an ``error`` event; the connection survives).

Request vocabulary
------------------
``ping``       liveness probe → ``pong``
``submit``     enqueue jobs → ``accepted`` (+ streamed events when
               ``watch`` is true)
``watch``      replay + follow a submission's event journal; an
               optional ``cursor`` (journal frames already seen)
               resumes a reconnecting client mid-stream
``jobs``       queue / submission / record summary → ``jobs``
``stats``      daemon telemetry tree → ``stats``
``shutdown``   drain and stop the daemon → ``bye``

Jobs cross the wire as plain dicts (:func:`job_to_wire` /
:func:`job_from_wire`).  Only *distributable* jobs — named predictor
specs — are representable; callable specs never leave the submitting
process, exactly the constraint the worker pool already imposes.
"""

from __future__ import annotations

import json
import os
from typing import IO, Any, Dict, Iterator, Optional

from repro.errors import ProtocolError
from repro.experiments.campaign import DEFAULT_CACHE_DIR, Job

#: Bumped on incompatible frame-shape changes; both ends send it and
#: reject frames from the future.
PROTOCOL_VERSION = 1

#: Socket filename inside the cache directory (the service and the
#: cache tier share a home on purpose: one directory = one tier).
SOCKET_NAME = "service.sock"

#: Upper bound on one frame, in bytes — a submission of thousands of
#: jobs fits with room to spare; anything larger is a protocol abuse.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Ops a client may send.
REQUEST_OPS = ("ping", "submit", "watch", "jobs", "stats", "shutdown")

#: Wire fields of a job, in :class:`Job` declaration order.
_JOB_FIELDS = ("workload", "core", "spec", "length", "warmup",
               "seed", "trace_file", "backend")


def socket_path(cache_dir: Optional[str] = None) -> str:
    """Resolve the daemon's unix-socket path.

    Priority: ``REPRO_SERVICE_SOCKET`` override, else
    ``<cache_dir>/service.sock`` where ``cache_dir`` falls back to
    ``REPRO_CACHE_DIR`` / the default cache directory — so clients and
    daemon agree on the rendezvous without any flag, per cache tier.
    """
    override = os.environ.get("REPRO_SERVICE_SOCKET")
    if override:
        return override
    root = cache_dir or os.environ.get("REPRO_CACHE_DIR",
                                       DEFAULT_CACHE_DIR)
    return os.path.join(root, SOCKET_NAME)


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialise one frame to its newline-terminated wire form."""
    return json.dumps(frame, separators=(",", ":"),
                      sort_keys=True).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` on oversized, non-JSON, or
    non-object lines."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds "
                            f"limit {MAX_FRAME_BYTES}")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}")
    return frame


def read_frames(stream: IO[bytes]) -> Iterator[Dict[str, Any]]:
    """Yield frames from a socket file object until EOF.

    Reads are bounded at :data:`MAX_FRAME_BYTES` per line so a
    slow-loris peer trickling a newline-free stream can exhaust its
    own patience, not the daemon's memory; an over-long line (and the
    half-frame tail of a severed stream) raises
    :class:`ProtocolError`."""
    while True:
        line = stream.readline(MAX_FRAME_BYTES + 1)
        if not line:
            return
        if not line.endswith(b"\n"):
            if len(line) > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame exceeds limit {MAX_FRAME_BYTES} without a "
                    "newline")
            # EOF mid-line: the peer died mid-frame.
            raise ProtocolError(
                f"stream severed mid-frame ({len(line)} bytes of an "
                "unterminated line)")
        if line.strip():
            yield decode_frame(line)


def check_request(frame: Dict[str, Any]) -> str:
    """Validate a request frame's version and op; returns the op."""
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"protocol version {version!r} not "
                            f"supported (daemon speaks "
                            f"{PROTOCOL_VERSION})")
    op = frame.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(f"unknown op {op!r} "
                            f"(expected one of {', '.join(REQUEST_OPS)})")
    return str(op)


def job_to_wire(job: Job) -> Dict[str, Any]:
    """A job's wire dict.  Raises :class:`ProtocolError` for callable
    predictor specs, which cannot cross a process boundary."""
    if not job.distributable:
        raise ProtocolError(
            f"job {job.label} has a callable predictor spec; only "
            "named specs are serialisable")
    return {name: getattr(job, name) for name in _JOB_FIELDS}


def job_from_wire(wire: Dict[str, Any]) -> Job:
    """Reconstruct a :class:`Job` from its wire dict, validating field
    presence and types (the daemon never trusts a client frame)."""
    if not isinstance(wire, dict):
        raise ProtocolError(
            f"job must be an object, got {type(wire).__name__}")
    unknown = set(wire) - set(_JOB_FIELDS)
    if unknown:
        raise ProtocolError(f"unknown job fields: {sorted(unknown)}")
    for name in ("workload", "core"):
        if not isinstance(wire.get(name), str):
            raise ProtocolError(f"job field {name!r} must be a string")
    spec = wire.get("spec")
    if spec is not None and not isinstance(spec, str):
        raise ProtocolError("job field 'spec' must be a string or null")
    for name in ("length", "warmup"):
        if name in wire and not isinstance(wire[name], int):
            raise ProtocolError(f"job field {name!r} must be an int")
    seed = wire.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise ProtocolError("job field 'seed' must be an int or null")
    trace_file = wire.get("trace_file")
    if trace_file is not None and not isinstance(trace_file, str):
        raise ProtocolError(
            "job field 'trace_file' must be a string or null")
    backend = wire.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ProtocolError(
            "job field 'backend' must be a string or null")
    return Job(workload=wire["workload"], core=wire["core"], spec=spec,
               length=wire.get("length", 100_000),
               warmup=wire.get("warmup", 40_000),
               seed=seed, trace_file=trace_file, backend=backend)


__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
    "SOCKET_NAME",
    "check_request",
    "decode_frame",
    "encode_frame",
    "job_from_wire",
    "job_to_wire",
    "read_frames",
    "socket_path",
]
