"""The campaign service daemon behind ``repro serve``.

One process, three kinds of thread:

* the **accept loop** (:meth:`ServiceDaemon.serve_forever`) owns the
  unix listening socket and spawns one handler thread per client
  connection;
* **handler threads** parse request frames
  (:mod:`repro.service.protocol`), mutate the
  :class:`~repro.service.board.JobBoard`, and stream journal events
  back to watching clients;
* the **scheduler thread** drains the board's priority queue one
  batch at a time through a single non-strict
  :class:`~repro.experiments.campaign.CampaignEngine` — so every
  fault-tolerance behaviour of batch campaigns (watchdog pool,
  retries, quarantine, cache locking per batch) carries over to the
  service unchanged.

Crash safety is inherited, not reimplemented: results persist through
the cache tier's atomic writes, so a SIGKILL'd daemon restarts into a
consistent cache — resubmitted work is served as cache hits and
``*.bad`` quarantine files survive untouched (the restart guarantees
in docs/SERVICE.md).

An optional localhost HTTP shim mirrors ``ping`` / ``stats`` /
``jobs`` / ``submit`` for curl-friendly monitoring; the unix socket
remains the primary, streaming interface.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.errors import ProtocolError, ReproError, ServiceError
from repro.experiments.campaign import (
    CampaignEngine,
    Job,
    JobEvent,
    ResultCache,
)
from repro.service.board import JobBoard
from repro.service.protocol import (
    PROTOCOL_VERSION,
    check_request,
    encode_frame,
    job_from_wire,
    read_frames,
)
from repro.telemetry.stats import StatGroup


def _claim_socket(path: str) -> socket.socket:
    """Bind the daemon's unix socket, taking over a stale path.

    A socket file with no listener behind it (daemon SIGKILL'd) is
    unlinked and reclaimed; a *live* listener raises
    :class:`ServiceError` — two daemons must never share a cache
    tier's socket."""
    if os.path.exists(path):
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(1.0)
            probe.connect(path)
        except OSError:
            os.unlink(path)  # dead socket: previous daemon is gone
        else:
            probe.close()
            raise ServiceError(f"a daemon is already serving {path}")
        finally:
            probe.close()
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(16)
    # Closing a socket does not reliably wake a thread blocked in
    # accept(); a short timeout lets the accept loop notice stop().
    listener.settimeout(1.0)
    return listener


class ServiceDaemon:
    """The ``repro serve`` server: socket lifecycle, request dispatch,
    scheduling, and telemetry.

    Parameters mirror the campaign flags: ``jobs`` is the worker-pool
    width, ``timeout``/``retries`` the per-job fault policy, and
    ``cache`` the shared :class:`ResultCache` tier (budget included).
    ``http_port`` additionally serves the read-side ops over
    ``127.0.0.1:<port>``.
    """

    def __init__(self, socket_path: str,
                 cache: Optional[ResultCache] = None,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 http_port: Optional[int] = None) -> None:
        self.socket_path = socket_path
        self.cache = cache
        self.board = JobBoard()
        self.engine = CampaignEngine(jobs=jobs, cache=cache,
                                     progress=self._on_engine_event,
                                     timeout=timeout, retries=retries,
                                     strict=False)
        self.http_port = http_port
        self.started = time.time()
        self.requests = 0
        self.submissions = 0
        self.accepted = 0
        self.deduped_inflight = 0
        self.deduped_cached = 0
        self._stats_lock = threading.Lock()
        self._stop = threading.Event()
        self._cleanup_lock = threading.Lock()
        self._cleaned = False
        self._listener: Optional[socket.socket] = None
        self._http_server: Any = None
        self._scheduler: Optional[threading.Thread] = None
        self._conns: List[socket.socket] = []

    # -- lifecycle -----------------------------------------------------
    def serve_forever(self) -> None:
        """Claim the socket and serve until ``shutdown`` (or
        :meth:`stop`).  Blocks; run it on the main thread."""
        self._listener = _claim_socket(self.socket_path)
        self._scheduler = threading.Thread(target=self._run_scheduler,
                                           name="repro-scheduler",
                                           daemon=True)
        self._scheduler.start()
        if self.http_port is not None:
            self._start_http()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue  # poll the stop flag
                except OSError:
                    break  # listener closed by stop()
                self._conns.append(conn)
                threading.Thread(target=self._serve_connection,
                                 args=(conn,), daemon=True).start()
        finally:
            self.stop()

    def stop(self) -> None:
        """Drain and shut down: close the board (the scheduler
        finishes what is queued, then exits), the listener, and every
        client connection; remove the socket file."""
        self._stop.set()
        # The shutdown op sets the flag before the accept loop's own
        # stop() call, so idempotence needs a separate cleanup latch.
        with self._cleanup_lock:
            if self._cleaned:
                return
            self._cleaned = True
        self.board.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._scheduler is not None:
            self._scheduler.join(timeout=60)
        if self._http_server is not None:
            self._http_server.shutdown()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - client already gone
                pass
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    # -- scheduler -----------------------------------------------------
    def _run_scheduler(self) -> None:
        """Drain the board's queue batch-by-batch through the engine
        until the board closes."""
        while True:
            batch = self.board.next_batch()
            if batch is None:
                return
            try:
                self.engine.run_campaign(batch)
            # The scheduler must outlive any single campaign: an
            # engine bug would otherwise wedge every queued client.
            # Failures surface per-job via the board's fail events.
            # reprolint: disable=RL004
            except Exception as exc:  # noqa: BLE001 - thread boundary
                for job in batch:
                    self.board.on_event(JobEvent(
                        job, "fail", 0, len(batch), None,
                        type(exc).__name__))

    def _on_engine_event(self, event: JobEvent) -> None:
        """Engine progress hook: attach the result (the ledger is
        populated before the event fires) and forward to the board."""
        result: Optional[Dict[str, Any]] = None
        if event.status in ("hit", "done") \
                and self.engine.ledger is not None:
            sim = self.engine.ledger.results.get(event.job)
            if sim is not None:
                result = sim.to_dict()
        self.board.on_event(event, result)

    # -- connection handling -------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        """Handle one client: a sequence of request frames, each
        answered by one or more event frames."""
        stream = conn.makefile("rb")
        try:
            frames = read_frames(stream)
            while True:
                try:
                    frame = next(frames)
                except StopIteration:
                    break
                except ProtocolError as exc:
                    # Undecodable line: answer, then drop the client —
                    # framing is lost, resync is impossible.
                    self._send(conn, {"event": "error",
                                      "kind": "ProtocolError",
                                      "error": str(exc)})
                    break
                self._bump("requests")
                try:
                    op = check_request(frame)
                    if self._dispatch(op, frame, conn):
                        break  # shutdown: stop reading this client
                except ProtocolError as exc:
                    self._send(conn, {"event": "error",
                                      "kind": "ProtocolError",
                                      "error": str(exc)})
                except ReproError as exc:
                    self._send(conn, {"event": "error",
                                      "kind": type(exc).__name__,
                                      "error": str(exc)})
        except (OSError, ValueError, ReproError):
            pass  # client hung up (or sent junk) mid-frame; nothing
            # left to answer — per-request errors were handled above
        finally:
            stream.close()
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _dispatch(self, op: str, frame: Dict[str, Any],
                  conn: socket.socket) -> bool:
        """Execute one request; returns True when the daemon should
        shut down."""
        if op == "ping":
            self._send(conn, {"event": "pong", "v": PROTOCOL_VERSION,
                              "pid": os.getpid(),
                              "uptime": time.time() - self.started})
        elif op == "submit":
            self._handle_submit(frame, conn)
        elif op == "watch":
            sid = frame.get("id")
            if not isinstance(sid, str) \
                    or sid not in self.board.submissions:
                raise ProtocolError(f"unknown submission id {sid!r}")
            self._stream_events(conn, sid, 0)
        elif op == "jobs":
            self._send(conn, {"event": "jobs",
                              **self.board.summary()})
        elif op == "stats":
            self._send(conn, {"event": "stats",
                              "tree": self.stats_tree().to_dict()})
        else:  # shutdown
            self._send(conn, {"event": "bye"})
            self._stop.set()
            self.board.close()
            if self._listener is not None:
                self._listener.close()  # unblocks the accept loop
            return True
        return False

    def _handle_submit(self, frame: Dict[str, Any],
                       conn: socket.socket) -> None:
        """Validate, enqueue, acknowledge, and (optionally) stream."""
        jobs = self._parse_jobs(frame)
        priority = frame.get("priority", 0)
        if not isinstance(priority, int):
            raise ProtocolError("'priority' must be an int")
        if self.board.closed:
            raise ServiceError("daemon is shutting down")
        self._bump("submissions")
        submission = self.board.submit(jobs, priority)
        with self._stats_lock:
            self.accepted += submission.counts["new"]
            self.deduped_inflight += \
                submission.counts["deduped_inflight"]
            self.deduped_cached += submission.counts["deduped_cached"]
        self._send(conn, {"event": "accepted", "id": submission.sid,
                          "total": submission.total,
                          **submission.counts})
        if frame.get("watch", True):
            self._stream_events(conn, submission.sid, 0)

    def _parse_jobs(self, frame: Dict[str, Any]) -> List[Job]:
        """Decode and validate the submission's job list against the
        live registries — the daemon rejects what it cannot run."""
        from repro.experiments.runner import core_config
        from repro.predictors import make_predictor
        from repro.trace.workloads import get_profile

        wire_jobs = frame.get("jobs")
        if not isinstance(wire_jobs, list) or not wire_jobs:
            raise ProtocolError("'jobs' must be a non-empty list")
        jobs = [job_from_wire(wire) for wire in wire_jobs]
        for job in jobs:
            try:
                get_profile(job.workload)
            except KeyError:
                raise ProtocolError(
                    f"unknown workload {job.workload!r}") from None
            try:
                core_config(job.core)
            except ReproError:
                raise ProtocolError(
                    f"unknown core {job.core!r}") from None
            if isinstance(job.spec, str):
                try:
                    make_predictor(job.spec)
                except ValueError:
                    raise ProtocolError(
                        f"unknown predictor {job.spec!r}") from None
            if job.trace_file is not None \
                    and not os.path.exists(job.trace_file):
                raise ProtocolError(
                    f"trace file {job.trace_file!r} not found on the "
                    "daemon host")
        return jobs

    def _stream_events(self, conn: socket.socket, sid: str,
                       cursor: int) -> None:
        """Replay + follow a submission's journal to one client."""
        while not self._stop.is_set():
            frames, cursor, finished = self.board.events_since(
                sid, cursor)
            for event_frame in frames:
                self._send(conn, event_frame)
            if finished:
                return

    def _send(self, conn: socket.socket,
              frame: Dict[str, Any]) -> None:
        """Write one frame; a vanished client ends its stream only."""
        try:
            conn.sendall(encode_frame(frame))
        except OSError as exc:
            raise ReproError("client connection lost") from exc

    def _bump(self, counter: str) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # -- telemetry -----------------------------------------------------
    def stats_tree(self) -> StatGroup:
        """The daemon's telemetry tree, shaped by
        :data:`repro.telemetry.schema.SERVICE_SCHEMA` (the ``stats``
        op and ``repro jobs --stats`` render it)."""
        board = self.board.summary()
        root = StatGroup("daemon")
        service = root.group("service", "campaign service daemon")
        service.counter("requests", "request frames handled",
                        self.requests)
        service.counter("submissions", "submit frames accepted",
                        self.submissions)
        jobs = service.group("jobs", "job-record accounting")
        jobs.counter("accepted", "distinct new jobs enqueued",
                     self.accepted)
        jobs.counter("deduped-inflight",
                     "submissions joined to in-flight records",
                     self.deduped_inflight)
        jobs.counter("deduped-cached",
                     "submissions answered from completed records",
                     self.deduped_cached)
        jobs.counter("completed", "records in the done state",
                     board["records"]["done"])
        jobs.counter("failed", "records quarantined as failed",
                     board["records"]["failed"])
        tier = root.group("cache", "shared result-cache tier")
        cache = self.cache
        tier.counter("hits", "result-cache hits (daemon lifetime)",
                     cache.hits if cache else 0)
        tier.counter("misses", "result-cache misses",
                     cache.misses if cache else 0)
        tier.counter("stores", "results persisted",
                     cache.stores if cache else 0)
        tier.counter("evictions", "entries evicted by the budget",
                     cache.evicted if cache else 0)
        tier.counter("quarantined", "corrupt entries quarantined",
                     cache.quarantined if cache else 0)
        tier.counter("entries", "current entries on disk",
                     len(cache.entries()) if cache else 0)
        tier.counter("size-bytes", "current entry bytes on disk",
                     cache.size_bytes() if cache else 0)
        return root

    # -- HTTP shim -----------------------------------------------------
    def _start_http(self) -> None:
        """Serve ping/stats/jobs/submit over localhost HTTP (read
        mirror + non-streaming submit; monitoring convenience only)."""
        from http.server import (
            BaseHTTPRequestHandler,
            ThreadingHTTPServer,
        )

        daemon = self

        class Handler(BaseHTTPRequestHandler):
            """Maps a few fixed paths onto the socket ops."""

            def log_message(self, *args: Any) -> None:
                """Silence per-request stderr noise."""

            def _reply(self, status: int,
                       payload: Dict[str, Any]) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                """Read-side mirror: /ping, /stats, /jobs."""
                daemon._bump("requests")
                if self.path == "/ping":
                    self._reply(200, {"event": "pong",
                                      "pid": os.getpid()})
                elif self.path == "/stats":
                    self._reply(200, {
                        "event": "stats",
                        "tree": daemon.stats_tree().to_dict()})
                elif self.path == "/jobs":
                    self._reply(200, {"event": "jobs",
                                      **daemon.board.summary()})
                else:
                    self._reply(404, {"event": "error",
                                      "error": "unknown path"})

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                """Non-streaming /submit: returns the accepted frame;
                progress is then available via the socket ops."""
                daemon._bump("requests")
                if self.path != "/submit":
                    self._reply(404, {"event": "error",
                                      "error": "unknown path"})
                    return
                length = int(self.headers.get("Content-Length", "0"))
                try:
                    frame = json.loads(
                        self.rfile.read(length).decode("utf-8"))
                    jobs = daemon._parse_jobs(frame)
                    daemon._bump("submissions")
                    submission = daemon.board.submit(
                        jobs, frame.get("priority", 0))
                except (ValueError, ReproError) as exc:
                    self._reply(400, {"event": "error",
                                      "error": str(exc)})
                    return
                self._reply(200, {"event": "accepted",
                                  "id": submission.sid,
                                  "total": submission.total,
                                  **submission.counts})

        self._http_server = ThreadingHTTPServer(
            ("127.0.0.1", self.http_port), Handler)
        threading.Thread(target=self._http_server.serve_forever,
                         name="repro-http", daemon=True).start()


__all__ = ["ServiceDaemon"]
