"""The campaign service daemon behind ``repro serve``.

One process, three kinds of thread:

* the **accept loop** (:meth:`ServiceDaemon.serve_forever`) owns the
  unix listening socket and spawns one handler thread per client
  connection;
* **handler threads** parse request frames
  (:mod:`repro.service.protocol`), mutate the
  :class:`~repro.service.board.JobBoard`, and stream journal events
  back to watching clients;
* the **scheduler thread** drains the board's priority queue one
  batch at a time through a single non-strict
  :class:`~repro.experiments.campaign.CampaignEngine` — so every
  fault-tolerance behaviour of batch campaigns (watchdog pool,
  retries, quarantine, cache locking per batch) carries over to the
  service unchanged.

Crash safety has two tiers.  Results persist through the cache tier's
atomic writes, so a SIGKILL'd daemon restarts into a consistent cache —
resubmitted work is served as cache hits and ``*.bad`` quarantine files
survive untouched.  Board state persists through the write-ahead log
(:mod:`repro.service.wal`, stored under ``<cache>/wal/``): on startup
the daemon replays the log, rebuilds every submission's journal,
requeues in-flight jobs, compacts the history into one snapshot
segment, and records the recovery stats for ``repro doctor``.  SIGTERM
drains gracefully — queued batches finish, journals seal, the WAL
compacts, and the socket is unlinked — while SIGKILL is the recovery
path above (the restart guarantees in docs/SERVICE.md §Durability).

Liveness is observable: a heartbeat sidecar rewritten ~1/s plus
``service.scheduler.*`` stats let ``repro doctor`` and ``repro jobs
--stats`` distinguish a *wedged* scheduler (stale activity with work
queued) from a merely *busy* one.  Backpressure bounds queue depth:
past ``--max-pending`` (``REPRO_SERVICE_MAX_PENDING``) submissions are
rejected with a typed ``ServiceOverloaded`` error instead of growing
memory without bound.

An optional localhost HTTP shim mirrors ``ping`` / ``stats`` /
``jobs`` / ``submit`` for curl-friendly monitoring; the unix socket
remains the primary, streaming interface.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.errors import (
    ProtocolError,
    ReproError,
    ServiceError,
    ServiceOverloaded,
)
from repro.experiments.campaign import (
    CampaignEngine,
    Job,
    JobEvent,
    ResultCache,
)
from repro.service import wal as wal_mod
from repro.service.board import JobBoard
from repro.service.protocol import (
    PROTOCOL_VERSION,
    check_request,
    encode_frame,
    job_from_wire,
    read_frames,
)
from repro.telemetry.stats import StatGroup
from repro.testing import faults, synccheck

#: Seconds between heartbeat sidecar rewrites.
HEARTBEAT_INTERVAL = 1.0


def _claim_socket(path: str) -> socket.socket:
    """Bind the daemon's unix socket, taking over a stale path.

    A socket file with no listener behind it (daemon SIGKILL'd) is
    unlinked and reclaimed; a *live* listener raises
    :class:`ServiceError` — two daemons must never share a cache
    tier's socket."""
    if os.path.exists(path):
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(1.0)
            probe.connect(path)
        except OSError:
            os.unlink(path)  # dead socket: previous daemon is gone
        else:
            probe.close()
            raise ServiceError(f"a daemon is already serving {path}")
        finally:
            probe.close()
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(16)
    # Closing a socket does not reliably wake a thread blocked in
    # accept(); a short timeout lets the accept loop notice stop().
    listener.settimeout(1.0)
    return listener


class ServiceDaemon:
    """The ``repro serve`` server: socket lifecycle, request dispatch,
    scheduling, and telemetry.

    Parameters mirror the campaign flags: ``jobs`` is the worker-pool
    width, ``timeout``/``retries`` the per-job fault policy, and
    ``cache`` the shared :class:`ResultCache` tier (budget included).
    ``http_port`` additionally serves the read-side ops over
    ``127.0.0.1:<port>``.

    Locking (docs/SERVICE.md §Locking): ``_stats_lock`` guards the
    request/submission counters and scheduler-liveness fields,
    ``_conns_lock`` the live-connection list, and ``_cleanup_lock``
    the shutdown latch — all three are leaves, never held while taking
    another service lock.  The board and WAL carry their own locks.
    """

    #: Attribute guard map enforced by RL008 and, under
    #: ``REPRO_SYNC_CHECKS=1``, at runtime by repro.testing.synccheck.
    _GUARDED = {
        "requests": "_stats_lock",
        "submissions": "_stats_lock",
        "accepted": "_stats_lock",
        "deduped_inflight": "_stats_lock",
        "deduped_cached": "_stats_lock",
        "rejected": "_stats_lock",
        "heartbeats": "_stats_lock",
        "recovery": "_stats_lock",
        "_activity": "_stats_lock",
        "_busy": "_stats_lock",
        "_cleaned": "_cleanup_lock",
        "_conns": "_conns_lock",
    }

    def __init__(self, socket_path: str,
                 cache: Optional[ResultCache] = None,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 http_port: Optional[int] = None,
                 max_pending: Optional[int] = None) -> None:
        self.socket_path = socket_path
        self.cache = cache
        if max_pending is None:
            max_pending = int(os.environ.get(
                "REPRO_SERVICE_MAX_PENDING", "0") or 0)
        self.max_pending = max_pending
        # Durability rides on the cache tier: without one (--no-cache)
        # there is nowhere to rehydrate results from, so the WAL is
        # off and the board is memory-only, exactly as before PR 9.
        self.wal: Optional[wal_mod.WriteAheadLog] = None
        self.wal_root: Optional[str] = None
        if cache is not None:
            self.wal_root = os.path.join(cache.root,
                                         wal_mod.WAL_DIRNAME)
            self.wal = wal_mod.WriteAheadLog(self.wal_root)
        self.board = JobBoard(wal=self.wal, max_pending=max_pending)
        self.engine = CampaignEngine(jobs=jobs, cache=cache,
                                     progress=self._on_engine_event,
                                     timeout=timeout, retries=retries,
                                     strict=False)
        self.http_port = http_port
        self.started = time.time()
        self.requests = 0
        self.submissions = 0
        self.accepted = 0
        self.deduped_inflight = 0
        self.deduped_cached = 0
        self.rejected = 0
        self.heartbeats = 0
        #: Stats of the startup WAL recovery (zeros until it runs).
        self.recovery: Dict[str, int] = {
            "records": 0, "submissions": 0, "events": 0,
            "requeued": 0, "sealed": 0, "torn": 0}
        self._activity = time.time()
        self._busy = False
        self._stats_lock = synccheck.wrap_lock(
            threading.Lock(), "daemon._stats_lock")
        self._stop = threading.Event()
        self._cleanup_lock = synccheck.wrap_lock(
            threading.Lock(), "daemon._cleanup_lock")
        self._cleaned = False
        self._listener: Optional[socket.socket] = None
        self._http_server: Any = None
        self._scheduler: Optional[threading.Thread] = None
        self._heartbeat: Optional[threading.Thread] = None
        self._conns_lock = synccheck.wrap_lock(
            threading.Lock(), "daemon._conns_lock")
        self._conns: List[socket.socket] = []
        synccheck.guard_instance(self)

    # -- lifecycle -----------------------------------------------------
    def serve_forever(self) -> None:
        """Claim the socket, recover board state from the WAL, and
        serve until ``shutdown`` / SIGTERM (or :meth:`stop`).
        Blocks; run it on the main thread."""
        listener = self._listener = _claim_socket(self.socket_path)
        self._recover()
        self._install_signal_handlers()
        # daemon-thread: joined in stop(); daemonized so a wedged
        # engine batch cannot keep the interpreter alive past exit.
        self._scheduler = threading.Thread(target=self._run_scheduler,
                                           name="repro-scheduler",
                                           daemon=True)
        self._scheduler.start()
        if self.wal_root is not None:
            # daemon-thread: joined in stop() *before* the heartbeat
            # sidecar is cleared, so a final rewrite cannot land after
            # clear_heartbeat and make a clean shutdown look crashed.
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop, name="repro-heartbeat",
                daemon=True)
            self._heartbeat.start()
        if self.http_port is not None:
            self._start_http()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue  # poll the stop flag
                except OSError:
                    break  # listener closed by stop()
                with self._conns_lock:
                    self._conns.append(conn)
                # daemon-thread: handler threads block on client
                # sockets; stop() closes every tracked connection
                # (which unblocks them), and daemonization covers a
                # client that never hangs up.
                threading.Thread(target=self._serve_connection,
                                 args=(conn,), daemon=True).start()
        finally:
            self.stop()

    def stop(self) -> None:
        """Drain and shut down: close the board (the scheduler
        finishes what is queued, then exits), the listener, and every
        client connection; remove the socket file."""
        self._stop.set()
        # The shutdown op sets the flag before the accept loop's own
        # stop() call, so idempotence needs a separate cleanup latch.
        with self._cleanup_lock:
            if self._cleaned:
                return
            self._cleaned = True
        self.board.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._scheduler is not None:
            self._scheduler.join(timeout=60)
        # Join the heartbeat before clearing its sidecar: an unjoined
        # heartbeat thread could rewrite heartbeat.json *after*
        # clear_heartbeat below, leaving crash evidence behind a clean
        # shutdown for doctor to misread.  (_stop is already set, so
        # the loop's wait() returns immediately.)
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=10)
        if self._http_server is not None:
            self._http_server.shutdown()
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - client already gone
                pass
        if self.wal is not None:
            # Scheduler is quiet: compact so the next start replays
            # one clean snapshot instead of the full history, then
            # seal it (the seal must follow the compaction — compacting
            # replaces the history, so a seal written first would be
            # erased with it).
            try:
                self.wal.compact(self.board.snapshot_records())
                self.wal.seal()
            except OSError:
                pass  # a failed compaction leaves the log authoritative
            self.wal.close()
        if self.wal_root is not None:
            wal_mod.clear_heartbeat(self.wal_root)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    # -- durability ----------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the board from the WAL (no-op without one): replay
        trusted records, requeue in-flight work, compact the history
        into one snapshot segment, and record the stats for ``repro
        doctor`` / the ``stats`` op."""
        if self.wal is None or self.wal_root is None:
            return
        records, torn = self.wal.replay()
        stats = dict(self.board.restore(records, self._load_result))
        stats["torn"] = torn
        with self._stats_lock:
            self.recovery = stats
        if records or torn:
            # One clean snapshot segment also drops any torn tail so
            # later appends never land after a corrupt record.
            self.wal.compact(self.board.snapshot_records())
            wal_mod.write_recovery(self.wal_root, dict(stats))

    def _load_result(self, key: str) -> Optional[Dict[str, Any]]:
        """A cached result's wire payload by job key, bypassing the
        cache's hit/miss accounting (recovery is not traffic)."""
        if self.cache is None:
            return None
        try:
            with open(self.cache.path(key), encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _install_signal_handlers(self) -> None:
        """Arm graceful drain on SIGTERM (main thread only — the
        in-process daemons the tests spin up skip this)."""
        if threading.current_thread() is not threading.main_thread():
            return
        def _drain(signum: int, frame: Any) -> None:
            self._stop.set()
            self.board.close()
            if self._listener is not None:
                self._listener.close()  # unblocks the accept loop
        signal.signal(signal.SIGTERM, _drain)

    def _heartbeat_loop(self) -> None:
        """Rewrite the heartbeat sidecar ~1/s so doctor can tell a
        crashed daemon (stale file) from a live one, and a wedged
        scheduler (old ``activity``) from a busy one."""
        while not self._stop.wait(HEARTBEAT_INTERVAL):
            if self.wal_root is None:
                return
            board = self.board.summary()
            with self._stats_lock:
                self.heartbeats += 1
                beat = {"pid": os.getpid(),
                        "state": "busy" if self._busy else "idle",
                        "activity": self._activity,
                        "queued_batches": board["queued_batches"],
                        "pending": board["records"]["pending"],
                        "running": board["records"]["running"]}
            try:
                wal_mod.write_heartbeat(self.wal_root, beat)
            except OSError:  # pragma: no cover - disk full/unwritable
                return

    def _touch_activity(self) -> None:
        with self._stats_lock:
            self._activity = time.time()

    # -- scheduler -----------------------------------------------------
    def _run_scheduler(self) -> None:
        """Drain the board's queue batch-by-batch through the engine
        until the board closes."""
        while True:
            batch = self.board.next_batch()
            if batch is None:
                return
            with self._stats_lock:
                self._busy = True
                self._activity = time.time()
            try:
                self.engine.run_campaign(batch)
            # The scheduler must outlive any single campaign: an
            # engine bug would otherwise wedge every queued client.
            # Failures surface per-job via the board's fail events.
            # reprolint: disable=RL004
            except Exception as exc:  # noqa: BLE001 - thread boundary
                for job in batch:
                    self.board.on_event(JobEvent(
                        job, "fail", 0, len(batch), None,
                        type(exc).__name__))
            finally:
                with self._stats_lock:
                    self._busy = False
                    self._activity = time.time()

    def _on_engine_event(self, event: JobEvent) -> None:
        """Engine progress hook: attach the result (the ledger is
        populated before the event fires) and forward to the board."""
        self._touch_activity()
        result: Optional[Dict[str, Any]] = None
        if event.status in ("hit", "done") \
                and self.engine.ledger is not None:
            sim = self.engine.ledger.results.get(event.job)
            if sim is not None:
                result = sim.to_dict()
        self.board.on_event(event, result)

    # -- connection handling -------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        """Handle one client: a sequence of request frames, each
        answered by one or more event frames."""
        stream = conn.makefile("rb")
        try:
            frames = read_frames(stream)
            while True:
                try:
                    frame = next(frames)
                except StopIteration:
                    break
                except ProtocolError as exc:
                    # Undecodable line: answer, then drop the client —
                    # framing is lost, resync is impossible.
                    self._send(conn, {"event": "error",
                                      "kind": "ProtocolError",
                                      "error": str(exc)})
                    break
                self._bump("requests")
                try:
                    op = check_request(frame)
                    if self._dispatch(op, frame, conn):
                        break  # shutdown: stop reading this client
                except ProtocolError as exc:
                    self._send(conn, {"event": "error",
                                      "kind": "ProtocolError",
                                      "error": str(exc)})
                except ReproError as exc:
                    self._send(conn, {"event": "error",
                                      "kind": type(exc).__name__,
                                      "error": str(exc)})
        except (OSError, ValueError, ReproError):
            pass  # client hung up (or sent junk) mid-frame; nothing
            # left to answer — per-request errors were handled above
        finally:
            stream.close()
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _dispatch(self, op: str, frame: Dict[str, Any],
                  conn: socket.socket) -> bool:
        """Execute one request; returns True when the daemon should
        shut down."""
        if op == "ping":
            self._send(conn, {"event": "pong", "v": PROTOCOL_VERSION,
                              "pid": os.getpid(),
                              "uptime": time.time() - self.started})
        elif op == "submit":
            self._handle_submit(frame, conn)
        elif op == "watch":
            sid = frame.get("id")
            if not isinstance(sid, str) \
                    or not self.board.has_submission(sid):
                raise ProtocolError(f"unknown submission id {sid!r}")
            cursor = frame.get("cursor", 0)
            if not isinstance(cursor, int) or cursor < 0:
                raise ProtocolError("'cursor' must be an int >= 0")
            self._stream_events(conn, sid, cursor)
        elif op == "jobs":
            self._send(conn, {"event": "jobs",
                              **self.board.summary()})
        elif op == "stats":
            self._send(conn, {"event": "stats",
                              "tree": self.stats_tree().to_dict()})
        else:  # shutdown
            self._send(conn, {"event": "bye"})
            self._stop.set()
            self.board.close()
            if self._listener is not None:
                self._listener.close()  # unblocks the accept loop
            return True
        return False

    def _handle_submit(self, frame: Dict[str, Any],
                       conn: socket.socket) -> None:
        """Validate, enqueue, acknowledge, and (optionally) stream."""
        jobs = self._parse_jobs(frame)
        priority = frame.get("priority", 0)
        if not isinstance(priority, int):
            raise ProtocolError("'priority' must be an int")
        if self.board.closed:
            raise ServiceError("daemon is shutting down")
        self._bump("submissions")
        try:
            submission = self.board.submit(jobs, priority)
        except ServiceOverloaded:
            self._bump("rejected")
            raise
        with self._stats_lock:
            self.accepted += submission.counts["new"]
            self.deduped_inflight += \
                submission.counts["deduped_inflight"]
            self.deduped_cached += submission.counts["deduped_cached"]
        self._send(conn, {"event": "accepted", "id": submission.sid,
                          "total": submission.total,
                          **submission.counts})
        if frame.get("watch", True):
            self._stream_events(conn, submission.sid, 0)

    def _parse_jobs(self, frame: Dict[str, Any]) -> List[Job]:
        """Decode and validate the submission's job list against the
        live registries — the daemon rejects what it cannot run."""
        from repro.experiments.runner import core_config
        from repro.predictors import make_predictor
        from repro.trace.workloads import get_profile

        wire_jobs = frame.get("jobs")
        if not isinstance(wire_jobs, list) or not wire_jobs:
            raise ProtocolError("'jobs' must be a non-empty list")
        jobs = [job_from_wire(wire) for wire in wire_jobs]
        for job in jobs:
            try:
                get_profile(job.workload)
            except KeyError:
                raise ProtocolError(
                    f"unknown workload {job.workload!r}") from None
            try:
                core_config(job.core)
            except ReproError:
                raise ProtocolError(
                    f"unknown core {job.core!r}") from None
            if isinstance(job.spec, str):
                try:
                    make_predictor(job.spec)
                except ValueError:
                    raise ProtocolError(
                        f"unknown predictor {job.spec!r}") from None
            if job.trace_file is not None \
                    and not os.path.exists(job.trace_file):
                raise ProtocolError(
                    f"trace file {job.trace_file!r} not found on the "
                    "daemon host")
        return jobs

    def _stream_events(self, conn: socket.socket, sid: str,
                       cursor: int) -> None:
        """Replay + follow a submission's journal to one client."""
        while not self._stop.is_set():
            frames, cursor, finished = self.board.events_since(
                sid, cursor)
            for event_frame in frames:
                self._send(conn, event_frame)
            if finished:
                return

    def _send(self, conn: socket.socket,
              frame: Dict[str, Any]) -> None:
        """Write one frame; a vanished client ends its stream only.

        The ``frame-drop`` fault point fires here: the frame is
        truncated mid-write and the connection severed, modelling a
        dropped stream the client must recover from by reconnecting
        and resuming from its journal cursor."""
        encoded = encode_frame(frame)
        if os.environ.get(faults.FAULTS_ENV):
            label = " ".join(
                str(frame[name]) for name in ("event", "status",
                                              "label", "id")
                if frame.get(name))
            if faults.drop_frame(label):
                try:
                    conn.sendall(encoded[:max(1, len(encoded) // 2)])
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass
                raise ReproError(
                    f"injected frame drop on {label!r}")
        try:
            conn.sendall(encoded)
        except OSError as exc:
            raise ReproError("client connection lost") from exc

    def _bump(self, counter: str) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # -- telemetry -----------------------------------------------------
    def stats_tree(self) -> StatGroup:
        """The daemon's telemetry tree, shaped by
        :data:`repro.telemetry.schema.SERVICE_SCHEMA` (the ``stats``
        op and ``repro jobs --stats`` render it)."""
        board = self.board.summary()
        wal_counts = self.wal.counters() if self.wal else \
            {"appends": 0, "bytes": 0, "compactions": 0}
        # One consistent snapshot: handler threads and the scheduler
        # bump these concurrently, so every counter read happens under
        # the same lock the writers take (RL008).
        with self._stats_lock:
            requests = self.requests
            submissions = self.submissions
            accepted = self.accepted
            deduped_inflight = self.deduped_inflight
            deduped_cached = self.deduped_cached
            rejected = self.rejected
            heartbeats = self.heartbeats
            recovered = dict(self.recovery)
            age = time.time() - self._activity
            busy = self._busy
        root = StatGroup("daemon")
        service = root.group("service", "campaign service daemon")
        service.counter("requests", "request frames handled",
                        requests)
        service.counter("submissions", "submit frames accepted",
                        submissions)
        jobs = service.group("jobs", "job-record accounting")
        jobs.counter("accepted", "distinct new jobs enqueued",
                     accepted)
        jobs.counter("deduped-inflight",
                     "submissions joined to in-flight records",
                     deduped_inflight)
        jobs.counter("deduped-cached",
                     "submissions answered from completed records",
                     deduped_cached)
        jobs.counter("completed", "records in the done state",
                     board["records"]["done"])
        jobs.counter("failed", "records quarantined as failed",
                     board["records"]["failed"])
        jobs.counter("rejected",
                     "submissions rejected by backpressure",
                     rejected)
        wal = service.group("wal", "write-ahead log (durability)")
        wal.counter("appends", "records durably appended",
                    wal_counts["appends"])
        wal.counter("bytes", "bytes appended (daemon lifetime)",
                    wal_counts["bytes"])
        wal.counter("segments", "segment files on disk",
                    self.wal.segments() if self.wal else 0)
        wal.counter("compactions", "snapshot compactions performed",
                    wal_counts["compactions"])
        recovery = service.group("recovery",
                                 "last startup WAL recovery")
        recovery.counter("records", "trusted WAL records replayed",
                         recovered.get("records", 0))
        recovery.counter("submissions", "submissions rebuilt",
                         recovered.get("submissions", 0))
        recovery.counter("requeued", "in-flight jobs requeued",
                         recovered.get("requeued", 0))
        recovery.counter("torn", "torn records dropped at replay",
                         recovered.get("torn", 0))
        scheduler = service.group("scheduler", "scheduler liveness")
        scheduler.counter("heartbeats", "heartbeat sidecar rewrites",
                          heartbeats)
        scheduler.counter("busy", "1 while a batch is in the engine",
                          int(busy))
        scheduler.counter(
            "activity-age",
            "seconds since the last scheduler/engine event "
            "(large + busy + queued work = wedged)", round(age, 3))
        sync_counts = synccheck.counters()
        sync = service.group(
            "sync", "runtime lock sanitizer (REPRO_SYNC_CHECKS)")
        sync.counter("enabled", "1 when the sanitizer is armed",
                     sync_counts["enabled"])
        sync.counter("locks",
                     "service locks wrapped in checking proxies",
                     sync_counts["locks"])
        sync.counter("acquisitions",
                     "lock acquisitions recorded in the order graph",
                     sync_counts["acquisitions"])
        sync.counter("violations",
                     "inversions/unguarded accesses caught",
                     sync_counts["violations"])
        tier = root.group("cache", "shared result-cache tier")
        cache = self.cache
        tier.counter("hits", "result-cache hits (daemon lifetime)",
                     cache.hits if cache else 0)
        tier.counter("misses", "result-cache misses",
                     cache.misses if cache else 0)
        tier.counter("stores", "results persisted",
                     cache.stores if cache else 0)
        tier.counter("evictions", "entries evicted by the budget",
                     cache.evicted if cache else 0)
        tier.counter("quarantined", "corrupt entries quarantined",
                     cache.quarantined if cache else 0)
        tier.counter("entries", "current entries on disk",
                     len(cache.entries()) if cache else 0)
        tier.counter("size-bytes", "current entry bytes on disk",
                     cache.size_bytes() if cache else 0)
        return root

    # -- HTTP shim -----------------------------------------------------
    def _start_http(self) -> None:
        """Serve ping/stats/jobs/submit over localhost HTTP (read
        mirror + non-streaming submit; monitoring convenience only)."""
        from http.server import (
            BaseHTTPRequestHandler,
            ThreadingHTTPServer,
        )

        daemon = self

        class Handler(BaseHTTPRequestHandler):
            """Maps a few fixed paths onto the socket ops."""

            def log_message(self, *args: Any) -> None:
                """Silence per-request stderr noise."""

            def _reply(self, status: int,
                       payload: Dict[str, Any]) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                """Read-side mirror: /ping, /stats, /jobs."""
                daemon._bump("requests")
                if self.path == "/ping":
                    self._reply(200, {"event": "pong",
                                      "pid": os.getpid()})
                elif self.path == "/stats":
                    self._reply(200, {
                        "event": "stats",
                        "tree": daemon.stats_tree().to_dict()})
                elif self.path == "/jobs":
                    self._reply(200, {"event": "jobs",
                                      **daemon.board.summary()})
                else:
                    self._reply(404, {"event": "error",
                                      "error": "unknown path"})

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                """Non-streaming /submit: returns the accepted frame;
                progress is then available via the socket ops."""
                daemon._bump("requests")
                if self.path != "/submit":
                    self._reply(404, {"event": "error",
                                      "error": "unknown path"})
                    return
                length = int(self.headers.get("Content-Length", "0"))
                try:
                    frame = json.loads(
                        self.rfile.read(length).decode("utf-8"))
                    jobs = daemon._parse_jobs(frame)
                    daemon._bump("submissions")
                    submission = daemon.board.submit(
                        jobs, frame.get("priority", 0))
                except (ValueError, ReproError) as exc:
                    self._reply(400, {"event": "error",
                                      "error": str(exc)})
                    return
                self._reply(200, {"event": "accepted",
                                  "id": submission.sid,
                                  "total": submission.total,
                                  **submission.counts})

        port = self.http_port
        if port is None:  # pragma: no cover - guarded by the caller
            return
        self._http_server = ThreadingHTTPServer(
            ("127.0.0.1", port), Handler)
        # daemon-thread: shut down via _http_server.shutdown() in
        # stop(); daemonized so a stuck keep-alive cannot block exit.
        threading.Thread(target=self._http_server.serve_forever,
                         name="repro-http", daemon=True).start()


__all__ = ["ServiceDaemon"]
