"""In-memory job board: submissions, dedup, and event journals.

The board is the daemon's single source of truth, shared by every
connection thread and the scheduler under one lock:

* **Records** — one :class:`JobRecord` per distinct job (keyed by the
  campaign cache key, :func:`~repro.experiments.campaign.job_key`),
  whatever number of submissions reference it.  A job simulates at
  most once per daemon lifetime; later submissions *subscribe* to the
  existing record instead of enqueueing a duplicate — the in-flight
  half of the dedup contract (the on-disk half is the
  :class:`~repro.experiments.campaign.ResultCache`, consulted by the
  engine when the job actually runs).
* **Submissions** — one :class:`Submission` per ``submit`` frame, with
  an append-only event journal.  Watchers replay the journal from any
  cursor and then follow live under the board condition variable, so
  a client that connects late (or reconnects) sees exactly the same
  event sequence as one that watched from the start — no races, no
  gaps.
* **Queue** — a priority heap of batches (higher ``priority`` first,
  FIFO within a priority).  Only *new* records enter the queue; the
  scheduler drains it one batch at a time through the campaign
  engine.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.experiments.campaign import Job, JobEvent, job_key

#: Job-record lifecycle states.
STATES = ("pending", "running", "done", "failed")

#: Journal statuses that end a job's participation in a submission.
_TERMINAL = ("hit", "done", "fail")


@dataclass
class JobRecord:
    """One distinct job's lifetime on the board."""

    job: Job
    key: str
    state: str = "pending"
    #: Whether the result came from the cache tier (vs a simulation).
    from_cache: bool = False
    #: ``SimResult.to_dict()`` wire form, set on completion.
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Submission ids following this record.
    subscribers: Set[str] = field(default_factory=set)


@dataclass
class Submission:
    """One ``submit`` frame's accounting and event journal."""

    sid: str
    keys: List[str]
    priority: int
    counts: Dict[str, int]
    events: List[Dict[str, Any]] = field(default_factory=list)
    done: int = 0
    hits: int = 0
    simulated: int = 0
    failed: int = 0
    complete: bool = False

    @property
    def total(self) -> int:
        """Distinct jobs in this submission."""
        return len(self.keys)


class JobBoard:
    """Thread-safe submission/record registry with event streaming."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.records: Dict[str, JobRecord] = {}
        self.submissions: Dict[str, Submission] = {}
        self._queue: List[Tuple[int, int, str, List[str]]] = []
        self._seq = 0
        self._closed = False

    # -- submission ----------------------------------------------------
    def submit(self, jobs: Sequence[Job],
               priority: int = 0) -> Submission:
        """Register a submission; returns its :class:`Submission`.

        Incoming duplicates collapse first (a sweep that lists a job
        twice costs one slot); each distinct job then either creates a
        fresh pending record (queued for the scheduler), subscribes to
        an in-flight record (``deduped_inflight``), or is answered
        immediately from a completed record's held result
        (``deduped_cached`` — a memory-tier cache hit, no queueing at
        all).  Failed records are retried: a resubmission replaces
        them with a fresh pending record."""
        with self._cond:
            self._seq += 1
            sid = f"S{self._seq:04d}"
            ordered: List[Tuple[str, Job]] = []
            seen: Set[str] = set()
            for job in jobs:
                key = job_key(job)
                if key not in seen:
                    seen.add(key)
                    ordered.append((key, job))
            counts = {"new": 0, "deduped_inflight": 0,
                      "deduped_cached": 0}
            run_keys: List[str] = []
            served: List[JobRecord] = []
            for key, job in ordered:
                record = self.records.get(key)
                if record is None or record.state == "failed":
                    record = JobRecord(job=job, key=key)
                    self.records[key] = record
                    counts["new"] += 1
                    record.subscribers.add(sid)
                    run_keys.append(key)
                elif record.state in ("pending", "running"):
                    counts["deduped_inflight"] += 1
                    record.subscribers.add(sid)
                else:  # done: answer from the memory tier, no queueing
                    counts["deduped_cached"] += 1
                    served.append(record)
            submission = Submission(sid=sid,
                                    keys=[key for key, _ in ordered],
                                    priority=priority, counts=counts)
            self.submissions[sid] = submission
            for record in served:
                self._journal(submission, record, "hit", None, None)
            if run_keys:
                heapq.heappush(self._queue,
                               (-priority, self._seq, sid, run_keys))
            self._finish_if_drained(submission)
            self._cond.notify_all()
            return submission

    # -- scheduler side ------------------------------------------------
    def next_batch(self) -> Optional[List[Job]]:
        """Block until a batch is queued; ``None`` once the board is
        closed *and* the queue has drained (scheduler exit signal)."""
        with self._cond:
            while True:
                while self._queue:
                    _, _, _, keys = heapq.heappop(self._queue)
                    batch = [self.records[key].job for key in keys
                             if key in self.records
                             and self.records[key].state == "pending"]
                    if batch:
                        return batch
                if self._closed:
                    return None
                self._cond.wait(timeout=0.5)

    def on_event(self, event: JobEvent,
                 result: Optional[Dict[str, Any]] = None) -> None:
        """Apply one engine :class:`JobEvent` to the board: advance
        the record's state and fan the event out to every subscribed
        submission's journal."""
        key = job_key(event.job)
        with self._cond:
            record = self.records.get(key)
            if record is None:
                return
            if event.status == "start":
                record.state = "running"
            elif event.status == "hit":
                record.state = "done"
                record.from_cache = True
                record.result = result
            elif event.status == "done":
                record.state = "done"
                record.result = result
            elif event.status == "fail":
                record.state = "failed"
                record.error = event.error
            for sid in sorted(record.subscribers):
                submission = self.submissions.get(sid)
                if submission is None or submission.complete:
                    continue
                self._journal(submission, record, event.status,
                              event.elapsed, event.error)
                self._finish_if_drained(submission)
            self._cond.notify_all()

    def _journal(self, submission: Submission, record: JobRecord,
                 status: str, elapsed: Optional[float],
                 error: Optional[str]) -> None:
        """Append one event to a submission's journal (lock held)."""
        frame: Dict[str, Any] = {
            "event": "job", "id": submission.sid, "status": status,
            "label": record.job.label, "key": record.key,
        }
        if elapsed is not None:
            frame["elapsed"] = elapsed
        if error is not None:
            frame["error"] = error
        if status in ("hit", "done"):
            frame["result"] = record.result
        if status in _TERMINAL:
            submission.done += 1
            if status == "hit":
                submission.hits += 1
            elif status == "done":
                submission.simulated += 1
            else:
                submission.failed += 1
            frame["index"] = submission.done
            frame["total"] = submission.total
        submission.events.append(frame)

    def _finish_if_drained(self, submission: Submission) -> None:
        """Seal a submission whose every job reached a terminal state
        (lock held): append the ``complete`` journal frame."""
        if submission.complete or submission.done < submission.total:
            return
        submission.complete = True
        submission.events.append({
            "event": "complete", "id": submission.sid,
            "total": submission.total, "hits": submission.hits,
            "simulated": submission.simulated,
            "failed": submission.failed,
        })

    # -- watcher side --------------------------------------------------
    def events_since(self, sid: str, cursor: int,
                     timeout: float = 0.5
                     ) -> Tuple[List[Dict[str, Any]], int, bool]:
        """Journal frames past ``cursor`` for submission ``sid``.

        Blocks up to ``timeout`` seconds for news; returns
        ``(frames, new_cursor, finished)`` where ``finished`` means
        the journal is sealed (or the board closed) and the watcher
        should stop after draining.  Raises :class:`KeyError` for an
        unknown submission id."""
        with self._cond:
            submission = self.submissions[sid]
            if cursor >= len(submission.events) \
                    and not submission.complete and not self._closed:
                self._cond.wait(timeout=timeout)
            frames = submission.events[cursor:]
            new_cursor = cursor + len(frames)
            finished = (submission.complete
                        and new_cursor >= len(submission.events)) \
                or self._closed
            return frames, new_cursor, finished

    # -- introspection -------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """The ``jobs`` op's answer: queue depth, per-state record
        counts, and one row per submission."""
        with self._lock:
            states = {state: 0 for state in STATES}
            for record in self.records.values():
                states[record.state] += 1
            rows = [{"id": sub.sid, "total": sub.total,
                     "done": sub.done, "failed": sub.failed,
                     "priority": sub.priority,
                     "complete": sub.complete}
                    for sub in self.submissions.values()]
            return {"queued_batches": len(self._queue),
                    "records": states, "submissions": rows}

    def close(self) -> None:
        """Stop accepting work and wake every waiter; the scheduler
        drains what is already queued, watchers drain and detach."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        with self._lock:
            return self._closed


__all__ = ["JobBoard", "JobRecord", "STATES", "Submission"]
