"""Job board: submissions, dedup, event journals — now WAL-durable.

The board is the daemon's single source of truth, shared by every
connection thread and the scheduler under one lock:

* **Records** — one :class:`JobRecord` per distinct job (keyed by the
  campaign cache key, :func:`~repro.experiments.campaign.job_key`),
  whatever number of submissions reference it.  A job simulates at
  most once per daemon lifetime; later submissions *subscribe* to the
  existing record instead of enqueueing a duplicate — the in-flight
  half of the dedup contract (the on-disk half is the
  :class:`~repro.experiments.campaign.ResultCache`, consulted by the
  engine when the job actually runs).
* **Submissions** — one :class:`Submission` per ``submit`` frame, with
  an append-only event journal.  Watchers replay the journal from any
  cursor and then follow live under the board condition variable, so
  a client that connects late (or reconnects) sees exactly the same
  event sequence as one that watched from the start — no races, no
  gaps.
* **Queue** — a priority heap of batches (higher ``priority`` first,
  FIFO within a priority).  Only *new* records enter the queue; the
  scheduler drains it one batch at a time through the campaign
  engine.

Durability (PR 9, docs/SERVICE.md §Durability): when constructed with
a :class:`~repro.service.wal.WriteAheadLog`, every submission and
engine event is appended to the log *before* the in-memory mutation
(log-then-apply), and :meth:`restore` rebuilds the whole board —
records, journals, queue order, priorities — by replaying the log
through the very same apply paths.  Result payloads are never logged;
:meth:`restore` rehydrates them from the result cache by job key, and
any terminal record whose cached result has vanished is downgraded to
pending and requeued, so the dedup contract survives eviction too.

Backpressure: ``max_pending`` bounds the pending+running record count;
a submission that would exceed it is rejected atomically (no partial
state, nothing logged) with :class:`~repro.errors.ServiceOverloaded`.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from repro.errors import ServiceOverloaded
from repro.experiments.campaign import Job, JobEvent, job_key
from repro.service.protocol import job_from_wire, job_to_wire
from repro.service.wal import WriteAheadLog
from repro.testing import synccheck

#: Job-record lifecycle states.
STATES = ("pending", "running", "done", "failed")

#: Journal statuses that end a job's participation in a submission.
_TERMINAL = ("hit", "done", "fail")


@dataclass
class JobRecord:
    """One distinct job's lifetime on the board."""

    job: Job
    key: str
    state: str = "pending"
    #: Whether the result came from the cache tier (vs a simulation).
    from_cache: bool = False
    #: ``SimResult.to_dict()`` wire form, set on completion.
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Submission ids following this record.
    subscribers: Set[str] = field(default_factory=set)


@dataclass
class Submission:
    """One ``submit`` frame's accounting and event journal."""

    sid: str
    keys: List[str]
    priority: int
    counts: Dict[str, int]
    events: List[Dict[str, Any]] = field(default_factory=list)
    done: int = 0
    hits: int = 0
    simulated: int = 0
    failed: int = 0
    complete: bool = False

    @property
    def total(self) -> int:
        """Distinct jobs in this submission."""
        return len(self.keys)


def _strip_result(frame: Dict[str, Any]) -> Dict[str, Any]:
    """A journal frame without its result payload (snapshot form)."""
    if "result" not in frame:
        return frame
    slim = dict(frame)
    del slim["result"]
    return slim


def _sid_seq(sid: str) -> int:
    """The sequence number embedded in a submission id (``S0012`` →
    12); 0 for foreign ids."""
    try:
        return int(sid.lstrip("S"))
    except ValueError:
        return 0


class JobBoard:
    """Thread-safe submission/record registry with event streaming.

    ``wal`` makes the board durable (log-then-apply + :meth:`restore`);
    ``max_pending`` bounds queue depth (0 = unbounded).

    Every mutable field lives under the single board lock (``_cond``
    wraps the same lock, so holding either is holding both); ``wal``
    and ``max_pending`` are set once in the constructor and read-only
    afterwards.  The guard map below is enforced statically by RL008
    and at runtime by ``REPRO_SYNC_CHECKS=1``."""

    #: Attribute guard map (docs/LINTING.md §RL008).
    _GUARDED = {
        "records": "_lock",
        "submissions": "_lock",
        "_queue": "_lock",
        "_seq": "_lock",
        "_closed": "_lock",
        "_replaying": "_lock",
    }

    def __init__(self, wal: Optional[WriteAheadLog] = None,
                 max_pending: int = 0) -> None:
        self._lock = synccheck.wrap_lock(threading.Lock(),
                                         "board._lock")
        self._cond = threading.Condition(self._lock)
        self.records: Dict[str, JobRecord] = {}
        self.submissions: Dict[str, Submission] = {}
        self._queue: List[Tuple[int, int, str, List[str]]] = []
        self._seq = 0
        self._closed = False
        self.wal = wal
        self.max_pending = max_pending
        self._replaying = False
        synccheck.guard_instance(self)

    def _log(self, record: Dict[str, Any]) -> None:
        """Durably log one record before applying it (lock held); a
        no-op without a WAL or during :meth:`restore` replay."""
        if self.wal is not None and not self._replaying:
            self.wal.append(record)

    # -- submission ----------------------------------------------------
    def submit(self, jobs: Sequence[Job],
               priority: int = 0) -> Submission:
        """Register a submission; returns its :class:`Submission`.

        Incoming duplicates collapse first (a sweep that lists a job
        twice costs one slot); each distinct job then either creates a
        fresh pending record (queued for the scheduler), subscribes to
        an in-flight record (``deduped_inflight``), or is answered
        immediately from a completed record's held result
        (``deduped_cached`` — a memory-tier cache hit, no queueing at
        all).  Failed records are retried: a resubmission replaces
        them with a fresh pending record.

        Raises :class:`~repro.errors.ServiceOverloaded` — atomically,
        before any state change or WAL append — when the new records
        would push the pending+running count past ``max_pending``."""
        with self._cond:
            ordered: List[Tuple[str, Job]] = []
            seen: Set[str] = set()
            for job in jobs:
                key = job_key(job)
                if key not in seen:
                    seen.add(key)
                    ordered.append((key, job))
            if self.max_pending > 0:
                fresh = sum(
                    1 for key, _ in ordered
                    if key not in self.records
                    or self.records[key].state == "failed")
                inflight = sum(
                    1 for record in self.records.values()
                    if record.state in ("pending", "running"))
                if inflight + fresh > self.max_pending:
                    raise ServiceOverloaded(
                        f"job board at capacity: {inflight} in flight "
                        f"+ {fresh} new > max_pending="
                        f"{self.max_pending}; back off and resubmit")
            self._seq += 1
            sid = f"S{self._seq:04d}"
            self._log({"t": "submit", "sid": sid, "priority": priority,
                       "jobs": [job_to_wire(job) for _, job in ordered]})
            submission = self._apply_submit(ordered, priority, sid,
                                            self._seq)
            self._cond.notify_all()
            return submission

    def _apply_submit(self, ordered: Sequence[Tuple[str, Job]],
                      priority: int, sid: str,
                      seq: int) -> Submission:
        """Dedup/subscribe/queue one submission (lock held) — the
        single apply path shared by live ``submit`` and WAL replay."""
        counts = {"new": 0, "deduped_inflight": 0,
                  "deduped_cached": 0}
        run_keys: List[str] = []
        served: List[JobRecord] = []
        for key, job in ordered:
            record = self.records.get(key)
            if record is None or record.state == "failed":
                record = JobRecord(job=job, key=key)
                self.records[key] = record
                counts["new"] += 1
                record.subscribers.add(sid)
                run_keys.append(key)
            elif record.state in ("pending", "running"):
                counts["deduped_inflight"] += 1
                record.subscribers.add(sid)
            else:  # done: answer from the memory tier, no queueing
                counts["deduped_cached"] += 1
                served.append(record)
        submission = Submission(sid=sid,
                                keys=[key for key, _ in ordered],
                                priority=priority, counts=counts)
        self.submissions[sid] = submission
        for record in served:
            self._journal(submission, record, "hit", None, None)
        if run_keys:
            heapq.heappush(self._queue,
                           (-priority, seq, sid, run_keys))
        self._finish_if_drained(submission)
        return submission

    # -- scheduler side ------------------------------------------------
    def next_batch(self) -> Optional[List[Job]]:
        """Block until a batch is queued; ``None`` once the board is
        closed *and* the queue has drained (scheduler exit signal)."""
        with self._cond:
            while True:
                while self._queue:
                    _, _, _, keys = heapq.heappop(self._queue)
                    batch = [self.records[key].job for key in keys
                             if key in self.records
                             and self.records[key].state == "pending"]
                    if batch:
                        return batch
                if self._closed:
                    return None
                self._cond.wait(timeout=0.5)

    def on_event(self, event: JobEvent,
                 result: Optional[Dict[str, Any]] = None) -> None:
        """Apply one engine :class:`JobEvent` to the board: log it,
        advance the record's state, and fan the event out to every
        subscribed submission's journal."""
        key = job_key(event.job)
        with self._cond:
            record = self.records.get(key)
            if record is None:
                return
            logged: Dict[str, Any] = {"t": "event", "key": key,
                                      "status": event.status,
                                      "label": record.job.label}
            if event.elapsed is not None:
                logged["elapsed"] = event.elapsed
            if event.error is not None:
                logged["error"] = event.error
            self._log(logged)
            self._apply_event(record, event.status, event.elapsed,
                              event.error, result)
            self._cond.notify_all()

    def _apply_event(self, record: JobRecord, status: str,
                     elapsed: Optional[float], error: Optional[str],
                     result: Optional[Dict[str, Any]]) -> None:
        """State transition + journal fan-out (lock held) — the single
        apply path shared by live ``on_event`` and WAL replay."""
        if status == "start":
            record.state = "running"
        elif status == "hit":
            record.state = "done"
            record.from_cache = True
            record.result = result
        elif status == "done":
            record.state = "done"
            record.result = result
        elif status == "fail":
            record.state = "failed"
            record.error = error
        for sid in sorted(record.subscribers):
            submission = self.submissions.get(sid)
            if submission is None or submission.complete:
                continue
            self._journal(submission, record, status, elapsed, error)
            self._finish_if_drained(submission)

    def _journal(self, submission: Submission, record: JobRecord,
                 status: str, elapsed: Optional[float],
                 error: Optional[str]) -> None:
        """Append one event to a submission's journal (lock held)."""
        frame: Dict[str, Any] = {
            "event": "job", "id": submission.sid, "status": status,
            "label": record.job.label, "key": record.key,
        }
        if elapsed is not None:
            frame["elapsed"] = elapsed
        if error is not None:
            frame["error"] = error
        if status in ("hit", "done"):
            frame["result"] = record.result
        if status in _TERMINAL:
            submission.done += 1
            if status == "hit":
                submission.hits += 1
            elif status == "done":
                submission.simulated += 1
            else:
                submission.failed += 1
            frame["index"] = submission.done
            frame["total"] = submission.total
        submission.events.append(frame)

    def _finish_if_drained(self, submission: Submission) -> None:
        """Seal a submission whose every job reached a terminal state
        (lock held): append the ``complete`` journal frame."""
        if submission.complete or submission.done < submission.total:
            return
        submission.complete = True
        submission.events.append({
            "event": "complete", "id": submission.sid,
            "total": submission.total, "hits": submission.hits,
            "simulated": submission.simulated,
            "failed": submission.failed,
        })

    # -- durability: snapshot + restore --------------------------------
    def snapshot_records(self) -> List[Dict[str, Any]]:
        """The board's full live state as WAL snapshot records, in
        replay order (seq, records, submissions, queue).  Journal
        frames are stored without result payloads — :meth:`restore`
        rehydrates them from the result cache."""
        with self._lock:
            out: List[Dict[str, Any]] = [
                {"t": "seq", "value": self._seq}]
            for key in sorted(self.records):
                record = self.records[key]
                out.append({"t": "rec", "key": key,
                            "job": job_to_wire(record.job),
                            "state": record.state,
                            "from_cache": record.from_cache,
                            "error": record.error,
                            "subscribers": sorted(record.subscribers)})
            for sid in sorted(self.submissions):
                sub = self.submissions[sid]
                out.append({"t": "sub", "sid": sid,
                            "priority": sub.priority,
                            "keys": list(sub.keys),
                            "counts": dict(sub.counts),
                            "done": sub.done, "hits": sub.hits,
                            "simulated": sub.simulated,
                            "failed": sub.failed,
                            "complete": sub.complete,
                            "frames": [_strip_result(frame)
                                       for frame in sub.events]})
            if self._queue:
                out.append({"t": "queue",
                            "entries": [[pri, seq, sid, list(keys)]
                                        for pri, seq, sid, keys
                                        in sorted(self._queue)]})
            return out

    def restore(self, records: Sequence[Dict[str, Any]],
                load_result: Callable[[str], Optional[Dict[str, Any]]],
                ) -> Dict[str, int]:
        """Rebuild the board from replayed WAL records.

        ``load_result`` maps a job key to its cached
        ``SimResult.to_dict()`` payload (or ``None``); terminal
        records whose result has vanished from the cache are
        downgraded to pending.  After replay, every pending/running
        record that is no longer queued (its batch was popped before
        the crash, or its tail was torn off the log) is reset to
        pending and requeued in one deterministic recovery batch.
        Returns recovery stats (records/submissions/events applied,
        jobs requeued, whether a clean-shutdown seal was seen)."""
        stats = {"records": 0, "submissions": 0, "events": 0,
                 "requeued": 0, "sealed": 0}
        with self._cond:
            self._replaying = True
            try:
                for record in records:
                    kind = record.get("t")
                    stats["records"] += 1
                    if kind == "submit":
                        if self._restore_submit(record):
                            stats["submissions"] += 1
                    elif kind == "event":
                        if self._restore_event(record, load_result):
                            stats["events"] += 1
                    elif kind == "seal":
                        stats["sealed"] = 1
                    elif kind == "seq":
                        self._seq = max(self._seq,
                                        int(record.get("value", 0)))
                    elif kind == "rec":
                        self._restore_record(record, load_result)
                    elif kind == "sub":
                        if self._restore_submission(record):
                            stats["submissions"] += 1
                    elif kind == "queue":
                        for pri, seq, sid, keys in record.get(
                                "entries", []):
                            heapq.heappush(
                                self._queue,
                                (int(pri), int(seq), str(sid),
                                 [str(key) for key in keys]))
                    # unknown record types: skip (forward compat)
            finally:
                self._replaying = False
            stats["requeued"] = self._requeue_incomplete()
            self._cond.notify_all()
        return stats

    def _restore_submit(self, record: Dict[str, Any]) -> bool:
        """Replay one incremental ``submit`` record (lock held)."""
        sid = str(record.get("sid", ""))
        if not sid or sid in self.submissions:
            return False
        jobs = [job_from_wire(wire) for wire in record.get("jobs", [])]
        ordered: List[Tuple[str, Job]] = []
        seen: Set[str] = set()
        for job in jobs:
            key = job_key(job)
            if key not in seen:
                seen.add(key)
                ordered.append((key, job))
        seq = _sid_seq(sid)
        self._seq = max(self._seq, seq)
        self._apply_submit(ordered, int(record.get("priority", 0)),
                           sid, seq)
        return True

    def _restore_event(self, record: Dict[str, Any],
                       load_result: Callable[
                           [str], Optional[Dict[str, Any]]]) -> bool:
        """Replay one incremental ``event`` record (lock held)."""
        key = record.get("key")
        job_record = self.records.get(key) if key else None
        if job_record is None:
            return False
        status = str(record.get("status", ""))
        result = None
        if status in ("hit", "done"):
            result = load_result(key)
            if result is None:
                # The cached result this terminal event relied on is
                # gone (evicted/corrupt): pretend the job never
                # finished — it stays pending and gets requeued, and
                # its subscribers' journals stay open until the rerun.
                job_record.state = "pending"
                return False
        self._apply_event(job_record, status, record.get("elapsed"),
                          record.get("error"), result)
        return True

    def _restore_record(self, record: Dict[str, Any],
                        load_result: Callable[
                            [str], Optional[Dict[str, Any]]]) -> None:
        """Replay one snapshot ``rec`` record (lock held)."""
        key = record.get("key")
        if not key or key in self.records:
            return
        job_record = JobRecord(
            job=job_from_wire(record.get("job", {})), key=key,
            state=str(record.get("state", "pending")),
            from_cache=bool(record.get("from_cache", False)),
            error=record.get("error"),
            subscribers=set(record.get("subscribers", [])))
        if job_record.state == "done":
            job_record.result = load_result(key)
            if job_record.result is None:
                job_record.state = "pending"
                job_record.from_cache = False
        self.records[key] = job_record

    def _restore_submission(self, record: Dict[str, Any]) -> bool:
        """Replay one snapshot ``sub`` record (lock held)."""
        sid = str(record.get("sid", ""))
        if not sid or sid in self.submissions:
            return False
        submission = Submission(
            sid=sid, keys=[str(key) for key in record.get("keys", [])],
            priority=int(record.get("priority", 0)),
            counts=dict(record.get("counts", {})),
            done=int(record.get("done", 0)),
            hits=int(record.get("hits", 0)),
            simulated=int(record.get("simulated", 0)),
            failed=int(record.get("failed", 0)),
            complete=bool(record.get("complete", False)))
        for frame in record.get("frames", []):
            frame = dict(frame)
            if frame.get("event") == "job" \
                    and frame.get("status") in ("hit", "done"):
                job_record = self.records.get(frame.get("key"))
                if job_record is not None \
                        and job_record.result is not None:
                    frame["result"] = job_record.result
            submission.events.append(frame)
        self.submissions[sid] = submission
        self._seq = max(self._seq, _sid_seq(sid))
        return True

    def _requeue_incomplete(self) -> int:
        """Reset running records to pending and requeue every
        unqueued pending record in one deterministic batch (lock
        held); returns the requeued count."""
        queued = {key for _, _, _, keys in self._queue for key in keys}
        missing: List[str] = []
        for key in sorted(self.records):
            record = self.records[key]
            if record.state == "running":
                record.state = "pending"
            if record.state == "pending" and key not in queued:
                missing.append(key)
        if missing:
            priority = 0
            for key in missing:
                for sid in self.records[key].subscribers:
                    submission = self.submissions.get(sid)
                    if submission is not None:
                        priority = max(priority, submission.priority)
            self._seq += 1
            heapq.heappush(self._queue,
                           (-priority, self._seq, "recovery", missing))
        return len(missing)

    # -- watcher side --------------------------------------------------
    def events_since(self, sid: str, cursor: int,
                     timeout: float = 0.5
                     ) -> Tuple[List[Dict[str, Any]], int, bool]:
        """Journal frames past ``cursor`` for submission ``sid``.

        Blocks up to ``timeout`` seconds for news; returns
        ``(frames, new_cursor, finished)`` where ``finished`` means
        the journal is sealed (or the board closed) and the watcher
        should stop after draining.  Raises :class:`KeyError` for an
        unknown submission id."""
        with self._cond:
            submission = self.submissions[sid]
            if cursor >= len(submission.events) \
                    and not submission.complete and not self._closed:
                self._cond.wait(timeout=timeout)
            frames = submission.events[cursor:]
            new_cursor = cursor + len(frames)
            finished = (submission.complete
                        and new_cursor >= len(submission.events)) \
                or self._closed
            return frames, new_cursor, finished

    # -- introspection -------------------------------------------------
    def has_submission(self, sid: str) -> bool:
        """Whether ``sid`` names a known submission — the locked probe
        the daemon's ``watch`` dispatch uses (reading
        ``board.submissions`` directly from a handler thread would be
        an unguarded cross-thread read)."""
        with self._lock:
            return sid in self.submissions

    def summary(self) -> Dict[str, Any]:
        """The ``jobs`` op's answer: queue depth, per-state record
        counts, and one row per submission."""
        with self._lock:
            states = {state: 0 for state in STATES}
            for record in self.records.values():
                states[record.state] += 1
            rows = [{"id": sub.sid, "total": sub.total,
                     "done": sub.done, "failed": sub.failed,
                     "priority": sub.priority,
                     "complete": sub.complete}
                    for sub in self.submissions.values()]
            return {"queued_batches": len(self._queue),
                    "records": states, "submissions": rows}

    def close(self) -> None:
        """Stop accepting work and wake every waiter; the scheduler
        drains what is already queued, watchers drain and detach."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        with self._lock:
            return self._closed


__all__ = ["JobBoard", "JobRecord", "STATES", "Submission"]
