"""Registry of every ``REPRO_*`` environment variable.

The simulator's behaviour can be steered by a small set of environment
variables (scale knobs, debug paths, guardrails, fault injection).
Every variable the package reads **must** be declared here — the
``RL006`` reprolint rule (docs/LINTING.md) statically cross-checks
each ``os.environ`` read of a ``REPRO_*`` name in ``src/repro``
against this registry, and ``repro doctor`` prints the registry with
the live values so a misspelled override is visible instead of
silently ignored.

Adding a variable
-----------------
1. Add an :class:`EnvVar` entry to :data:`REGISTRY` below (name,
   default, consumer module, one-line description).
2. Read it through ``os.environ`` in exactly one place when possible.
3. Document the behaviour in the consumer module's docstring.

``repro lint`` fails with ``RL006`` until step 1 is done, and also
when a declared variable is no longer read anywhere (dead registry
entries rot just like dead code).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, NamedTuple, Optional, Tuple


class EnvVar(NamedTuple):
    """One declared environment variable."""

    #: The full variable name (``REPRO_*``).
    name: str
    #: Human-readable effect of setting it.
    description: str
    #: Behaviour when unset (documentation only, not applied here).
    default: str
    #: Dotted module that consumes the variable.
    consumer: str


#: Every environment variable the package reads, keyed by name.
REGISTRY: Dict[str, EnvVar] = {
    var.name: var
    for var in (
        EnvVar("REPRO_CACHE_DIR",
               "result-cache directory for campaigns",
               ".repro-cache", "repro.experiments.campaign"),
        EnvVar("REPRO_CACHE_BUDGET",
               "cache-tier eviction budget (bytes; K/M/G suffixes)",
               "0 (unbounded, no eviction)",
               "repro.experiments.campaign"),
        EnvVar("REPRO_SERVICE_SOCKET",
               "unix socket path of the campaign service daemon",
               ".repro-cache/service.sock", "repro.service.protocol"),
        EnvVar("REPRO_LENGTH",
               "default trace length in micro-ops",
               "250000", "repro.experiments.runner"),
        EnvVar("REPRO_WARMUP",
               "override the default warmup prefix outright",
               "40% of length, capped at 100k",
               "repro.experiments.runner"),
        EnvVar("REPRO_SLOW_PATH",
               "1 selects the readable reference timing loop",
               "0 (optimized hot path)", "repro.pipeline.engine"),
        EnvVar("REPRO_ENGINE_BACKEND",
               "timing-loop backend: vector, scalar or reference",
               "vector (scalar when numpy is unavailable)",
               "repro.pipeline.engine"),
        EnvVar("REPRO_CHECK_INVARIANTS",
               "1 arms the post-run pipeline-invariant audit",
               "0 (audit off, zero-cost)", "repro.pipeline.engine"),
        EnvVar("REPRO_MAX_CYCLES",
               "non-termination watchdog budget in simulated cycles",
               "0 (watchdog disarmed)", "repro.pipeline.engine"),
        EnvVar("REPRO_SERVICE_MAX_PENDING",
               "daemon backpressure: max pending+running job records",
               "0 (unbounded queue depth)", "repro.service.daemon"),
        EnvVar("REPRO_FAULTS",
               "JSON fault-injection plan for the testing harness",
               "unset (no faults)", "repro.testing.faults"),
        EnvVar("REPRO_SYNC_CHECKS",
               "1 arms the runtime lock-order/guard sanitizer",
               "unset (sanitizer off, zero-cost)",
               "repro.testing.synccheck"),
    )
}


def declared_names() -> Tuple[str, ...]:
    """Every registered variable name, sorted."""
    return tuple(sorted(REGISTRY))


def is_declared(name: str) -> bool:
    """Whether ``name`` is a registered environment variable."""
    return name in REGISTRY


def undeclared(environ: Mapping[str, str]) -> List[str]:
    """``REPRO_*`` names set in ``environ`` but absent from the
    registry — almost always a typo that silently does nothing."""
    return sorted(name for name in environ
                  if name.startswith("REPRO_") and name not in REGISTRY)


def snapshot(environ: Mapping[str, str]
             ) -> List[Tuple[EnvVar, Optional[str]]]:
    """``(declaration, live value or None)`` per registered variable."""
    return [(REGISTRY[name], environ.get(name))
            for name in declared_names()]


def format_registry(environ: Mapping[str, str]) -> str:
    """The ``repro doctor`` rendering: one line per registered
    variable with its live value, then any undeclared overrides."""
    lines: List[str] = []
    for var, value in snapshot(environ):
        state = f"= {value}" if value is not None \
            else f"unset (default: {var.default})"
        lines.append(f"  {var.name:<24} {state}")
        lines.append(f"  {'':<24}   {var.description} "
                     f"[{var.consumer}]")
    for name in undeclared(environ):
        lines.append(f"  {name:<24} SET BUT NOT REGISTERED "
                     "(typo? see src/repro/envreg.py)")
    return "\n".join(lines)


__all__ = [
    "EnvVar",
    "REGISTRY",
    "declared_names",
    "format_registry",
    "is_declared",
    "snapshot",
    "undeclared",
]
