"""Critical Instruction Table (§IV-A1).

A 32-entry direct-mapped table recording loads that stall retirement:
when a load executes within commit-width of the ROB head, its PC is
recorded here.  Each entry holds an 11-bit tag, a 2-bit confidence and
a 2-bit utility.  Confidence saturation marks the PC a *critical root*
— the target FVP's focused training accelerates.  A new PC that
conflicts with a resident entry decays the resident's utility and
replaces it at zero.  All entries reset every Criticality Epoch
(400 000 retired instructions by default, the value §IV-A1 found best)
to track phase changes.
"""

from __future__ import annotations

from repro.errors import ConfigError

DEFAULT_EPOCH = 400_000

#: Table I: Tag (11b) + Confidence (2b) + Utility (2b) per entry.
ENTRY_BITS = 11 + 2 + 2


class CriticalInstructionTable:
    """Direct-mapped criticality learner."""

    __slots__ = ("entries", "size", "conf_max", "util_max", "epoch",
                 "_last_reset", "recordings", "evictions", "epoch_resets")

    def __init__(self, size: int = 32, conf_max: int = 3, util_max: int = 3,
                 epoch: int = DEFAULT_EPOCH) -> None:
        if size <= 0:
            raise ConfigError("CIT size must be positive")
        self.size = size
        self.conf_max = conf_max
        self.util_max = util_max
        self.epoch = epoch
        # index -> [tag, confidence, utility]; None when invalid.
        self.entries = [None] * size
        self._last_reset = 0
        self.recordings = 0
        self.evictions = 0
        self.epoch_resets = 0

    def _index_tag(self, pc: int):
        return pc % self.size, (pc // self.size) & 0x7FF

    # ------------------------------------------------------------------
    def record(self, pc: int) -> None:
        """A load at ``pc`` executed while stalling retirement."""
        self.recordings += 1
        index, tag = self._index_tag(pc)
        entry = self.entries[index]
        if entry is None:
            self.entries[index] = [tag, 1, 1]
            return
        if entry[0] == tag:
            if entry[1] < self.conf_max:
                entry[1] += 1
            if entry[2] < self.util_max:
                entry[2] += 1
            return
        # Conflict: decay the resident's utility; replace at zero.
        entry[2] -= 1
        if entry[2] <= 0:
            self.entries[index] = [tag, 1, 1]
            self.evictions += 1

    def is_critical(self, pc: int) -> bool:
        """True when ``pc`` is a confident critical root."""
        index, tag = self._index_tag(pc)
        entry = self.entries[index]
        return entry is not None and entry[0] == tag \
            and entry[1] >= self.conf_max

    def tick(self, retired: int) -> None:
        """Advance the epoch clock; resets all entries each epoch."""
        if self.epoch and retired - self._last_reset >= self.epoch:
            self.entries = [None] * self.size
            self._last_reset = retired
            self.epoch_resets += 1

    def occupancy(self) -> int:
        return sum(1 for entry in self.entries if entry is not None)

    def storage_bits(self) -> int:
        return self.size * ENTRY_BITS
