"""Learning Table (§IV-B).

A tiny (2-entry) buffer of parent-source PCs awaiting insertion into
the Value Table.  When a critical root allocates, the PC-augmented RAT
supplies the PCs of the instructions that produced its sources; those
PCs are parked here.  When an instruction whose PC is parked executes,
it *hits* the Learning Table, is allocated into the Value Table with
its just-produced value, and the entry is released — this is how the
paper avoids extra value-predictor write ports (updates are deferred
to execution instead of happening at the RAT read).
"""

from __future__ import annotations

from repro.errors import ConfigError


class LearningTable:
    """FIFO buffer of PCs pending Value Table allocation."""

    __slots__ = ("size", "_slots", "inserted", "hits", "dropped")

    def __init__(self, size: int = 2) -> None:
        if size <= 0:
            raise ConfigError("Learning Table size must be positive")
        self.size = size
        self._slots = []
        self.inserted = 0
        self.hits = 0
        self.dropped = 0

    def insert(self, pc: int) -> None:
        """Park a parent-source PC (FIFO replacement when full — a new
        learning target displaces the oldest pending one)."""
        if pc in self._slots:
            return
        if len(self._slots) >= self.size:
            self._slots.pop(0)
            self.dropped += 1
        self._slots.append(pc)
        self.inserted += 1

    def hit(self, pc: int) -> bool:
        """Check-and-release: True when ``pc`` was parked (the caller
        then allocates it into the Value Table)."""
        slots = self._slots
        if pc not in slots:
            return False
        slots.remove(pc)
        self.hits += 1
        return True

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, pc: int) -> bool:
        return pc in self._slots
