"""Focused Value Prediction (§IV) — the paper's contribution.

FVP refocuses value prediction from coverage onto *early execution of
bottleneck instructions*:

1. **Find the root of the critical path** (§IV-A): loads that execute
   within commit-width of the ROB head stall retirement; their PCs
   train the :class:`~repro.core.cit.CriticalInstructionTable`.
2. **Focused training** (§IV-B): when a confident critical root
   allocates, the PC-augmented RAT supplies the PCs of its parent
   sources, which are parked in the 2-entry
   :class:`~repro.core.learning_table.LearningTable` and allocated into
   the :class:`~repro.core.value_table.ValueTable` when they execute.
   Ops that prove unpredictable trigger a further one-level walk to
   *their* parents at their next allocation — the walk-back proceeds
   one level per dynamic instance until a predictable load is found.
   Non-loads are allocated with the no-predict counter pre-saturated,
   so they forward the walk without ever being predicted.
3. **Register dependencies** (§IV-C): the Value Table serves last-value
   and context (PC ⊕ last-32-branch-outcomes) prediction from one
   48-entry structure.
4. **Memory dependencies** (§IV-D): loads check Memory Renaming before
   the Value Table; a load with a learned producer store is predicted
   from the store's data, does not train the VT, and suppresses the
   register walk for its address chain.

Variants used by the evaluation are expressed as constructor knobs and
the factory functions at the bottom (`fvp_l1_miss`, `fvp_oracle`, ...).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional, Set

from repro.core.cit import DEFAULT_EPOCH, CriticalInstructionTable
from repro.core.learning_table import LearningTable
from repro.core.value_table import CONF_MAX, CV_FAIL_MAX, ValueTable
from repro.errors import ConfigError
from repro.isa import opcodes
from repro.isa.instruction import MicroOp
from repro.pipeline.vp_interface import (EngineContext, Prediction,
                                         ValuePredictor)
from repro.predictors.memory_renaming import MemoryRenaming

#: Table I: the RAT-PC extension — one PC (11 tracked bits) per
#: architectural register.
RAT_PC_BITS = 16 * 11

#: Criticality-detection modes (Figure 12).
RETIRE_STALL = "retire-stall"
L1_MISS = "l1-miss"
L1_MISS_ONLY = "l1-miss-only"
ORACLE = "oracle"

_MODES = (RETIRE_STALL, L1_MISS, L1_MISS_ONLY, ORACLE)


class FVP(ValuePredictor):
    """The Focused Value Predictor.

    Parameters
    ----------
    vt_entries / cit_size / lt_size:
        Structure geometries (defaults are the paper's: 48 / 32 / 2).
    use_vt / use_mr:
        Enable the register-dependence (Value Table) and
        memory-dependence (Memory Renaming) components — Figure 13
        runs each alone.
    criticality:
        One of ``retire-stall`` (default), ``l1-miss``,
        ``l1-miss-only``, ``oracle`` (Figure 12).
    oracle_pcs:
        Critical-root PC set for ``oracle`` mode.
    loads_only:
        Predict loads only (§IV-B; §VI-A2 studies False).
    target_branch_chains:
        Also treat frequently mispredicting branches as critical roots
        (§VI-A3 measures this is worth ≈nothing).
    accelerate_store_chains:
        After a confident memory renaming, also walk the producer
        store's dependence chain (§III-A's optional extension).
    epoch:
        Criticality Epoch in retired instructions (§IV-A1, 400k).
    """

    name = "fvp"

    def __init__(self, vt_entries: int = 48, cit_size: int = 32,
                 lt_size: int = 2, mr: Optional[MemoryRenaming] = None,
                 use_vt: bool = True, use_mr: bool = True,
                 criticality: str = RETIRE_STALL,
                 oracle_pcs: Optional[Iterable[int]] = None,
                 loads_only: bool = True,
                 target_branch_chains: bool = False,
                 accelerate_store_chains: bool = False,
                 epoch: int = DEFAULT_EPOCH) -> None:
        if criticality not in _MODES:
            raise ConfigError(f"criticality must be one of {_MODES}")
        if criticality == ORACLE and oracle_pcs is None:
            raise ConfigError("oracle mode needs oracle_pcs")
        self.vt = ValueTable(vt_entries)
        self.cit = CriticalInstructionTable(cit_size, epoch=epoch)
        self.lt = LearningTable(lt_size)
        self.mr = mr or MemoryRenaming(sl_entries=136, vf_entries=40)
        self.use_vt = use_vt
        self.use_mr = use_mr
        self.criticality = criticality
        self.oracle_pcs: Set[int] = set(oracle_pcs or ())
        self.loads_only = loads_only
        self.target_branch_chains = target_branch_chains
        self.accelerate_store_chains = accelerate_store_chains
        # §VI-A3 variant: per-PC branch mispredict confidence.
        self._branch_roots = {}
        # Attribution counters.
        self.lv_predictions = 0
        self.cv_predictions = 0
        self.mr_predictions = 0
        self.walks = 0

    # ------------------------------------------------------------------
    # Criticality.
    # ------------------------------------------------------------------
    def _is_critical_root(self, pc: int) -> bool:
        if self.criticality == RETIRE_STALL:
            return self.cit.is_critical(pc)
        if self.criticality == L1_MISS:
            return self.cit.is_critical(pc)  # CIT trained on L1 misses
        if self.criticality == ORACLE:
            return pc in self.oracle_pcs
        return False  # l1-miss-only never walks

    def _criticality_signal(self, uop: MicroOp, ctx: EngineContext) -> bool:
        """Should this executed op train the CIT?"""
        if self.loads_only and uop.op != opcodes.LOAD:
            return False
        if not self.loads_only and uop.dest is None:
            return False
        if self.criticality == RETIRE_STALL:
            return ctx.stalls_retirement
        if self.criticality in (L1_MISS, L1_MISS_ONLY):
            return uop.op == opcodes.LOAD and not ctx.l1_hit
        return False  # oracle mode: the set is externally supplied

    # ------------------------------------------------------------------
    # Front-end lookup (allocation).
    # ------------------------------------------------------------------
    def predict(self, uop: MicroOp, ctx: EngineContext) -> Optional[Prediction]:
        op = uop.op
        if op == opcodes.STORE:
            if self.use_mr:
                # MR's store-allocation path (publishes SQID + data).
                self.mr.predict(uop, ctx)
            self._maybe_walk(uop, ctx)
            return None
        if uop.dest is None:
            return None

        is_load = op == opcodes.LOAD
        prediction = None

        # 1. Loads preemptively check Memory Renaming (§IV-D).
        if is_load and self.use_mr:
            prediction = self.mr.predict(uop, ctx)
            if prediction is not None:
                self.mr_predictions += 1
                return replace(prediction, source="fvp-mr")

        if self.use_vt and (is_load or not self.loads_only):
            # lv_key(pc) is the identity; look up by PC directly and
            # hand the entry to _maybe_walk so it is not re-fetched.
            lv_entry = self.vt.lookup(uop.pc)
            if lv_entry is not None:
                # 2. Last-value prediction.
                if lv_entry.predictable:
                    if lv_entry.confidence >= CONF_MAX:
                        self.lv_predictions += 1
                        return Prediction(lv_entry.data, source="fvp-lv")
                else:
                    # 3. Context prediction for LV-hostile entries.
                    cv_entry = self.vt.lookup(
                        ValueTable.cv_key(uop.pc, ctx.history32),
                        context=True)
                    if cv_entry is not None and cv_entry.predictable \
                            and cv_entry.confident:
                        self.cv_predictions += 1
                        return Prediction(cv_entry.data, source="fvp-cv")
            # 4. Nothing predicted: possibly extend the focused walk.
            self._maybe_walk(uop, ctx, lv_entry)
            return None

        self._maybe_walk(uop, ctx)
        return None

    # ------------------------------------------------------------------
    _NO_ENTRY = object()  # "lv_entry not looked up yet" sentinel

    def _maybe_walk(self, uop: MicroOp, ctx: EngineContext,
                    lv_entry=_NO_ENTRY) -> None:
        """One level of the backward walk (§IV-B): park this op's
        parent-source PCs in the Learning Table when the op is a
        confident critical root, or an already-targeted op that has
        proven unpredictable."""
        if not uop.srcs:
            return
        if self.criticality == L1_MISS_ONLY:
            return  # this variant predicts the misses themselves only
        if self._is_critical_root(uop.pc):
            self._walk_parents(uop, ctx)
            return
        if lv_entry is FVP._NO_ENTRY:
            lv_entry = self.vt.lookup(uop.pc)
        if lv_entry is None or lv_entry.predictable:
            return
        # The op is targeted but LV-unpredictable.  Loads get their
        # second chances first: memory renaming, then context.
        if uop.op == opcodes.LOAD:
            if self.use_mr:
                assoc = self.mr.assoc.lookup(uop.pc)
                if assoc is not None:
                    # A memory dependence is known (or forming): rely on
                    # MR rather than predicting the address chain.
                    if self.accelerate_store_chains and \
                            assoc.confidence >= self.mr.conf_threshold:
                        self.lt.insert(assoc.value)  # the store's PC
                    return
            if lv_entry.cv_marked and lv_entry.cv_fail < CV_FAIL_MAX:
                return  # context prediction still has a chance
        self._walk_parents(uop, ctx)

    def _walk_parents(self, uop: MicroOp, ctx: EngineContext) -> None:
        """Park parent PCs that are not already tracked: a parent with a
        live Value Table entry is being learned (or has been judged),
        so re-parking it would only thrash the 2-entry LT."""
        walked = False
        writer_pc = ctx.writer_pc
        for src in uop.srcs:
            parent = writer_pc[src]
            if parent and parent not in self.lt \
                    and self.vt.lookup(parent) is None:
                self.lt.insert(parent)
                walked = True
        if walked:
            self.walks += 1

    # ------------------------------------------------------------------
    # Execution-time training.
    # ------------------------------------------------------------------
    def train_execute(self, uop: MicroOp, ctx: EngineContext,
                      used_prediction: Optional[Prediction],
                      correct: bool) -> None:
        if self.use_mr:
            self.mr.train_execute(uop, ctx, used_prediction, correct)

        is_load = uop.op == opcodes.LOAD
        producing = uop.dest is not None

        # Criticality learning.  The leading type check mirrors
        # _criticality_signal's own first test — it just skips the call
        # for ops that can never signal.
        if (is_load if self.loads_only else producing) \
                and self._criticality_signal(uop, ctx):
            self.cit.record(uop.pc)
            # A confident root is itself a prediction target (§IV-A1:
            # "value predicting the root ... may also be beneficial").
            if self.use_vt and self.cit.is_critical(uop.pc):
                self._allocate_target(uop)
        if self.criticality == ORACLE and is_load \
                and uop.pc in self.oracle_pcs and self.use_vt:
            self._allocate_target(uop)
        if self.target_branch_chains and ctx.branch_mispredicted:
            count = self._branch_roots.get(uop.pc, 0) + 1
            self._branch_roots[uop.pc] = count
            if count >= 4:
                self._walk_parents(uop, ctx)

        if not self.use_vt or not producing:
            return

        # Learning Table hit: a parked parent executes and is allocated.
        if self.lt.hit(uop.pc):
            predictable = is_load or not self.loads_only
            self.vt.allocate(uop.pc, uop.value, predictable=predictable)

        # Memory-renamed loads do not train the Value Table (§IV-D).
        if used_prediction is not None and \
                used_prediction.source == "fvp-mr":
            return
        # §IV-B: non-loads are never trained toward prediction — they
        # only mark the walk path (their entries stay no-predict).
        if self.loads_only and not is_load:
            return

        lv_entry = self.vt.lookup(uop.pc)
        if lv_entry is None:
            return
        repeated = self.vt.train(lv_entry, uop.value)
        if not repeated and not lv_entry.predictable and is_load \
                and not lv_entry.cv_marked:
            lv_entry.cv_marked = True

        # Context re-record: only near-head instances (§IV-C), which
        # bounds the number of histories tracked.  A PC whose context
        # entries keep proving unpredictable — or that keeps needing
        # fresh context allocations because its histories never repeat
        # — saturates cv_fail and stops re-recording; the walk then
        # proceeds to its parent sources.
        if lv_entry.cv_marked and lv_entry.cv_fail < CV_FAIL_MAX \
                and ctx.stalls_retirement:
            cv_key = ValueTable.cv_key(uop.pc, ctx.history32)
            cv_entry = self.vt.lookup(cv_key, context=True)
            if cv_entry is None:
                self.vt.allocate(cv_key, uop.value, context=True)
                lv_entry.cv_fail += 1
            else:
                repeated_cv = self.vt.train(cv_entry, uop.value)
                if repeated_cv:
                    if lv_entry.cv_fail:
                        lv_entry.cv_fail -= 1
                elif not cv_entry.predictable:
                    lv_entry.cv_fail += 1

    def _allocate_target(self, uop: MicroOp) -> None:
        if self.vt.lookup(uop.pc) is None:
            predictable = uop.op == opcodes.LOAD or not self.loads_only
            self.vt.allocate(uop.pc, uop.value, predictable=predictable)

    # ------------------------------------------------------------------
    def on_forwarding(self, store_pc: int, load_pc: int,
                      store_seq: int) -> None:
        """§IV-D: a load is "added to ... the MR" only once it is a
        focused-training target that last-value prediction failed on —
        FVP's 136-entry Store/Load cache learns critical pairs only,
        not the whole spill/fill population a big standalone MR covers."""
        if not self.use_mr:
            return
        if self.use_vt:
            lv_entry = self.vt.lookup(load_pc)
            already_known = self.mr.assoc.lookup(load_pc) is not None
            if not already_known and (
                    lv_entry is None or lv_entry.predictable):
                return
        self.mr.on_forwarding(store_pc, load_pc, store_seq)

    def epoch_tick(self, retired: int) -> None:
        # Inline guard (same test as cit.tick): this runs once per
        # retired op, and the reset fires once per 400k.
        cit = self.cit
        if cit.epoch and retired - cit._last_reset >= cit.epoch:
            cit.tick(retired)

    def storage_bits(self) -> int:
        """Table I accounting: CIT + VT + MR (S/L cache and Value File)
        + the RAT-PC extension."""
        bits = self.cit.storage_bits() + RAT_PC_BITS
        if self.use_vt:
            bits += self.vt.storage_bits()
        if self.use_mr:
            bits += self.mr.storage_bits()
        return bits

    def stats(self) -> dict:
        return {
            "lv_predictions": self.lv_predictions,
            "cv_predictions": self.cv_predictions,
            "mr_predictions": self.mr_predictions,
            "walks": self.walks,
            "lt_hits": self.lt.hits,
            "cit_recordings": self.cit.recordings,
            "cit_epoch_resets": self.cit.epoch_resets,
            "vt_allocs": self.vt.allocs,
        }


# ----------------------------------------------------------------------
# Evaluation variants.
# ----------------------------------------------------------------------
def fvp_default(**overrides) -> FVP:
    """The paper's FVP: retirement-stall criticality, LV+CV+MR, loads
    only, 1.2 KB total."""
    return FVP(**overrides)


def fvp_l1_miss_only(**overrides) -> FVP:
    """Figure 12 'FVP-L1-Miss-Only': predict only L1-missing loads
    themselves, no dependence-chain walk."""
    predictor = FVP(criticality=L1_MISS_ONLY, **overrides)
    predictor.name = "fvp-l1-miss-only"
    return predictor


def fvp_l1_miss(**overrides) -> FVP:
    """Figure 12 'FVP-L1-Miss': any L1 miss is treated as a critical
    root (walk enabled) instead of the retirement-stall heuristic."""
    predictor = FVP(criticality=L1_MISS, **overrides)
    predictor.name = "fvp-l1-miss"
    return predictor


def fvp_oracle(oracle_pcs: Iterable[int], **overrides) -> FVP:
    """Figure 12 'Oracle Criticality': critical roots supplied by the
    DDG analysis of :mod:`repro.criticality`."""
    predictor = FVP(criticality=ORACLE, oracle_pcs=oracle_pcs, **overrides)
    predictor.name = "fvp-oracle"
    return predictor


def fvp_register_only(**overrides) -> FVP:
    """Figure 13: register-dependence component alone (no MR)."""
    predictor = FVP(use_mr=False, **overrides)
    predictor.name = "fvp-reg"
    return predictor


def fvp_memory_only(**overrides) -> FVP:
    """Figure 13: memory-dependence component alone (no Value Table)."""
    predictor = FVP(use_vt=False, **overrides)
    predictor.name = "fvp-mem"
    return predictor


def fvp_all_instructions(**overrides) -> FVP:
    """§VI-A2: predict every producing instruction, not just loads."""
    predictor = FVP(loads_only=False, **overrides)
    predictor.name = "fvp-all"
    return predictor


def fvp_branch_chains(**overrides) -> FVP:
    """§VI-A3: additionally target mispredicting branches' chains."""
    predictor = FVP(target_branch_chains=True, **overrides)
    predictor.name = "fvp-br"
    return predictor


class FvpPlusStride(ValuePredictor):
    """FVP with a stride component layered on top (§VI-B's closing
    remark: the stride predictor "can be added on top of all the
    existing predictors, including FVP").

    FVP keeps absolute priority; the stride table only predicts loads
    FVP declined, and only trains on loads FVP has *targeted* (a PC
    with a live Value Table entry), so the focus property is kept.
    """

    name = "fvp+stride"

    def __init__(self, fvp: Optional[FVP] = None,
                 stride_entries: int = 32) -> None:
        from repro.predictors.stride import StridePredictor

        self.fvp = fvp or FVP()
        self.stride = StridePredictor(entries=stride_entries)

    def predict(self, uop, ctx):
        prediction = self.fvp.predict(uop, ctx)
        if prediction is not None:
            return prediction
        if uop.op == opcodes.LOAD and self.fvp.use_vt and \
                self.fvp.vt.lookup(ValueTable.lv_key(uop.pc)) is not None:
            return self.stride.predict(uop, ctx)
        return None

    def train_execute(self, uop, ctx, used_prediction, correct):
        self.fvp.train_execute(uop, ctx, used_prediction, correct)
        if uop.op == opcodes.LOAD and self.fvp.use_vt and \
                self.fvp.vt.lookup(ValueTable.lv_key(uop.pc)) is not None:
            self.stride.train_execute(uop, ctx, used_prediction, correct)

    def on_forwarding(self, store_pc, load_pc, store_seq):
        self.fvp.on_forwarding(store_pc, load_pc, store_seq)

    def epoch_tick(self, retired):
        self.fvp.epoch_tick(retired)

    def storage_bits(self):
        return self.fvp.storage_bits() + self.stride.storage_bits()

    def stats(self):
        return self.fvp.stats()



def fvp_with_stride(**overrides) -> FvpPlusStride:
    """FVP + a 32-entry stride layer (§VI-B extension)."""
    return FvpPlusStride(FVP(**overrides))
