"""Focused Value Prediction: CIT, Learning Table, Value Table, FVP."""

from repro.core.cit import DEFAULT_EPOCH, CriticalInstructionTable
from repro.core.fvp import (
    FVP,
    FvpPlusStride,
    L1_MISS,
    L1_MISS_ONLY,
    ORACLE,
    RETIRE_STALL,
    fvp_all_instructions,
    fvp_branch_chains,
    fvp_default,
    fvp_l1_miss,
    fvp_l1_miss_only,
    fvp_memory_only,
    fvp_oracle,
    fvp_register_only,
    fvp_with_stride,
)
from repro.core.learning_table import LearningTable
from repro.core.value_table import ValueTable, VTEntry

__all__ = [
    "FVP",
    "CriticalInstructionTable",
    "LearningTable",
    "ValueTable",
    "VTEntry",
    "DEFAULT_EPOCH",
    "RETIRE_STALL",
    "L1_MISS",
    "L1_MISS_ONLY",
    "ORACLE",
    "fvp_default",
    "fvp_l1_miss",
    "fvp_l1_miss_only",
    "fvp_oracle",
    "fvp_register_only",
    "fvp_memory_only",
    "fvp_all_instructions",
    "fvp_branch_chains",
    "fvp_with_stride",
    "FvpPlusStride",
]
