"""The Value Table (§IV-C).

A single 48-entry, 2-way set-associative table that serves both Last
Value and Context Value prediction through its lookup function: keyed
by PC alone it behaves as a last-value table; keyed by PC hashed with
the outcome of the last 32 branches it behaves as a context table.

Entry format (Table I): 11-bit tag, 64-bit data, 3-bit confidence,
2-bit no-predict, 2-bit utility.

Policies, per the paper:

* Confidence increments with probability 1/16 when the data repeats
  and resets on change; prediction requires saturation (≈ >99%
  accuracy).
* The no-predict counter increments on every data change and resets
  when confidence saturates; its saturation marks the entry "not
  predictable", which is what triggers the focused walk to parent
  sources — and is also how non-loads are filtered (they are allocated
  with no-predict pre-saturated).
* Utility increments alongside confidence; replacement picks the
  lowest-utility way and refuses (decaying utilities) while all ways
  remain useful.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError
from repro.predictors.common import XorShift, fold

VALUE_MASK = (1 << 64) - 1

#: Table I: tag(11) + data(64) + conf(3) + no-predict(2) + utility(2).
ENTRY_BITS = 11 + 64 + 3 + 2 + 2

CONF_MAX = 7        # 3-bit saturating
NO_PREDICT_MAX = 3  # 2-bit saturating
UTIL_MAX = 3        # 2-bit saturating
CV_FAIL_MAX = 3     # 2-bit saturating (see VTEntry.cv_fail)


class VTEntry:
    """One Value Table entry (plus the context-mark micro-state)."""

    __slots__ = ("tag", "data", "confidence", "no_predict", "utility",
                 "context", "cv_marked", "cv_fail")

    def __init__(self) -> None:
        self.tag = -1
        self.data = 0
        self.confidence = 0
        self.no_predict = 0
        self.utility = 0
        #: True for context-mode entries.  One extra tag bit separating
        #: the LV and CV namespaces: with an 11-bit tag, a context
        #: lookup would otherwise alias a confident last-value entry of
        #: an unrelated PC often enough to wreck accuracy.
        self.context = False
        #: LV entries only: this PC was unpredictable by last value and
        #: has been marked for context re-recording (§IV-C).
        self.cv_marked = False
        #: LV entries only: saturating count of context entries for this
        #: PC that themselves proved unpredictable.  At saturation the
        #: PC stops re-recording contexts (it is hopeless) and the
        #: focused walk proceeds to its parent sources instead.
        self.cv_fail = 0

    @property
    def predictable(self) -> bool:
        return self.no_predict < NO_PREDICT_MAX

    @property
    def confident(self) -> bool:
        return self.confidence >= CONF_MAX


class ValueTable:
    """48-entry 2-way table shared by LV and CV prediction."""

    __slots__ = ("sets", "ways", "rows", "_rng", "conf_prob",
                 "allocs", "alloc_rejections")

    def __init__(self, entries: int = 48, ways: int = 2,
                 conf_prob: int = 1, seed: int = 0xFADE) -> None:
        if entries <= 0 or entries % ways:
            raise ConfigError("entries must be a positive multiple of ways")
        self.sets = entries // ways
        self.ways = ways
        self.rows: List[List[VTEntry]] = [
            [VTEntry() for _ in range(ways)] for _ in range(self.sets)]
        self._rng = XorShift(seed)
        self.conf_prob = conf_prob
        self.allocs = 0
        self.alloc_rejections = 0

    # -- keys -----------------------------------------------------------
    @staticmethod
    def lv_key(pc: int) -> int:
        """Last-value lookup key: the PC alone."""
        return pc

    @staticmethod
    def cv_key(pc: int, history32: int, history_bits: int = 8) -> int:
        """Context lookup key: PC hashed with recent branch outcomes.

        The paper's context is the outcome of the last 32 branches; in
        this reproduction the fold defaults to the most recent 8, since
        interleaved synthetic kernels pollute long histories in a way
        phase-stable real code does not (DESIGN.md §2).  The hardware
        cost is identical either way.
        """
        recent = history32 & ((1 << history_bits) - 1)
        return pc ^ (fold(recent, 16) * 40503)

    def _set_tag(self, key: int):
        # Mix before splitting: a linear split systematically aliases
        # PCs that sit at round power-of-two code offsets.
        mixed = (key * 0x9E3779B1) & 0xFFFFFFFF
        return mixed % self.sets, (mixed >> 12) & 0x7FF

    # -- access ----------------------------------------------------------
    def lookup(self, key: int, context: bool = False) -> Optional[VTEntry]:
        mixed = (key * 0x9E3779B1) & 0xFFFFFFFF
        tag = (mixed >> 12) & 0x7FF
        for entry in self.rows[mixed % self.sets]:
            if entry.tag == tag and entry.context == context:
                return entry
        return None

    def allocate(self, key: int, value: int, predictable: bool = True,
                 context: bool = False) -> Optional[VTEntry]:
        """Install ``key``.  Non-load targets pass ``predictable=False``
        and arrive with the no-predict counter pre-saturated (§IV-B).
        Returns None when every way still has utility (utilities decay
        instead — allocation succeeds on a later attempt)."""
        mixed = (key * 0x9E3779B1) & 0xFFFFFFFF
        tag = (mixed >> 12) & 0x7FF
        row = self.rows[mixed % self.sets]
        for entry in row:
            if entry.tag == tag and entry.context == context:
                return entry
        victim = None
        for entry in row:
            if entry.tag == -1:
                victim = entry
                break
        if victim is None:
            lowest = row[0]
            for entry in row:
                if entry.utility < lowest.utility:
                    lowest = entry
            if lowest.utility > 0:
                for entry in row:
                    if entry.utility > 0:
                        entry.utility -= 1
                self.alloc_rejections += 1
                return None
            victim = lowest
        victim.tag = tag
        victim.data = value & VALUE_MASK
        victim.confidence = 0
        victim.no_predict = 0 if predictable else NO_PREDICT_MAX
        victim.utility = 0
        victim.context = context
        victim.cv_marked = False
        victim.cv_fail = 0
        self.allocs += 1
        return victim

    def train(self, entry: VTEntry, value: int) -> bool:
        """Update an entry with an executed value.  Returns True when
        the data repeated."""
        value &= VALUE_MASK
        if entry.data == value:
            if entry.confidence < CONF_MAX and self._rng.below(
                    self.conf_prob, 16):
                entry.confidence += 1
                if entry.confidence >= CONF_MAX:
                    entry.no_predict = 0
            if entry.utility < UTIL_MAX:
                entry.utility += 1
            return True
        entry.data = value
        entry.confidence = 0
        entry.utility = 0
        if entry.no_predict < NO_PREDICT_MAX:
            entry.no_predict += 1
        return False

    # -- introspection ----------------------------------------------------
    def occupancy(self) -> int:
        return sum(1 for row in self.rows for e in row if e.tag != -1)

    @property
    def capacity(self) -> int:
        return self.sets * self.ways

    def storage_bits(self) -> int:
        return self.capacity * ENTRY_BITS
